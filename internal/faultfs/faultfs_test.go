package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, f File, p []byte) error {
	t.Helper()
	_, err := f.Write(p)
	return err
}

func TestDiskPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	f, err := Disk.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeAll(t, f, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Disk.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := Disk.Rename(path, filepath.Join(dir, "y.bin")); err != nil {
		t.Fatal(err)
	}
	entries, err := Disk.ReadDir(dir)
	if err != nil || len(entries) != 1 || entries[0].Name() != "y.bin" {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
}

// TestRuleWindow pins the deterministic count semantics: After skips,
// Count bounds, and the same plan over the same operations fires at the
// same points on every run.
func TestRuleWindow(t *testing.T) {
	for run := 0; run < 2; run++ {
		dir := t.TempDir()
		in := NewInject(Disk, Rule{Op: OpWrite, After: 2, Count: 2})
		f, err := in.OpenFile(filepath.Join(dir, "w.bin"), os.O_WRONLY|os.O_CREATE, 0o666)
		if err != nil {
			t.Fatal(err)
		}
		var got []bool
		for i := 0; i < 6; i++ {
			got = append(got, writeAll(t, f, []byte{byte(i)}) != nil)
		}
		want := []bool{false, false, true, true, false, false}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: write %d failed=%v, want %v (log %v)", run, i, got[i], want[i], in.Log())
			}
		}
		if in.Fired() != 2 {
			t.Fatalf("run %d: fired %d, want 2", run, in.Fired())
		}
		if in.Armed() {
			t.Fatalf("run %d: exhausted plan still armed", run)
		}
		f.Close()
	}
}

func TestPathFilter(t *testing.T) {
	dir := t.TempDir()
	in := NewInject(Disk, Rule{Op: OpSync, Path: "wal-"})
	wal, _ := in.OpenFile(filepath.Join(dir, "wal-01.seg"), os.O_WRONLY|os.O_CREATE, 0o666)
	snap, _ := in.OpenFile(filepath.Join(dir, "snap.qps"), os.O_WRONLY|os.O_CREATE, 0o666)
	if err := snap.Sync(); err != nil {
		t.Fatalf("sync on unmatched path failed: %v", err)
	}
	if err := wal.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync on matched path = %v, want ErrInjected", err)
	}
}

// TestShortWrite pins the torn-write semantics: a prefix lands on disk,
// the caller sees the error.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	in := NewInject(Disk, Rule{Op: OpWrite, ShortBy: 3})
	f, _ := in.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o666)
	n, err := f.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("short write did not error")
	}
	if n != 7 {
		t.Fatalf("short write reported %d bytes, want 7", n)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "0123456" {
		t.Fatalf("disk holds %q, want the 7-byte torn prefix", got)
	}
}

func TestEnospcAndRename(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.tmp")
	os.WriteFile(src, []byte("x"), 0o666)
	in := NewInject(Disk, Rule{Op: OpWrite, Err: ErrNoSpace}, Rule{Op: OpRename})
	f, _ := in.OpenFile(filepath.Join(dir, "w.bin"), os.O_WRONLY|os.O_CREATE, 0o666)
	if err := writeAll(t, f, []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write = %v, want ENOSPC", err)
	}
	dst := filepath.Join(dir, "a.fin")
	if err := in.Rename(src, dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatal("failed rename created the destination")
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatal("failed rename removed the source")
	}
}

// TestFlipRead pins silent single-bit corruption: exactly one bit differs
// and no error is reported.
func TestFlipRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	want := bytes.Repeat([]byte{0xAA}, 64)
	os.WriteFile(path, want, 0o666)
	in := NewInject(Disk, Rule{Op: OpRead, Flip: true, Count: 1})
	got, err := in.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^want[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bits, want exactly 1", diff)
	}
	again, err := in.ReadFile(path)
	if err != nil || !bytes.Equal(again, want) {
		t.Fatalf("exhausted flip rule still corrupts (%v)", err)
	}
}

func TestDisarm(t *testing.T) {
	in := NewInject(Disk, Rule{Op: OpSync})
	if !in.Armed() {
		t.Fatal("fresh unbounded rule not armed")
	}
	in.Disarm()
	if in.Armed() {
		t.Fatal("Disarm left the plan armed")
	}
	dir := t.TempDir()
	f, _ := in.OpenFile(filepath.Join(dir, "x"), os.O_WRONLY|os.O_CREATE, 0o666)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Disarm: %v", err)
	}
}

func TestParsePlan(t *testing.T) {
	rules, err := ParsePlan("enospc@120+40,sync@3%wal-,flip@0+1,short@2+5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	if rules[0].Op != OpWrite || !errors.Is(rules[0].Err, ErrNoSpace) || rules[0].After != 120 || rules[0].Count != 40 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Op != OpSync || rules[1].Path != "wal-" || rules[1].After != 3 || rules[1].Count != 0 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Op != OpRead || !rules[2].Flip {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
	if rules[3].Op != OpWrite || rules[3].ShortBy != -1 {
		t.Fatalf("rule 3 = %+v", rules[3])
	}
	for _, bad := range []string{"", "bogus@1", "sync@-1", "sync@1+0", "sync@1%", "sync@x"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) did not error", bad)
		}
	}
}
