// Package faultfs abstracts the filesystem operations the durable layer
// performs — opening, writing, syncing, renaming, truncating, listing —
// behind a pluggable FS/File pair, so storage faults become injectable.
//
// The default implementation (Disk) passes every call straight to the os
// package and costs one interface dispatch. The injecting implementation
// (Inject) wraps any FS with a deterministic fault plan: rules that fire
// fsync errors, short/torn writes, ENOSPC, rename failures, and read
// bit-flips, selected by operation count and path pattern. Because rules
// count matching operations rather than consult a clock, a given plan
// produces the same fault at the same point of the same workload on every
// run — the property the injection differential tests rely on.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the durable layer uses: sequential reads
// and writes, fsync, close.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
	// Name returns the name the file was opened with.
	Name() string
}

// FS is the filesystem face of the durable layer: every path the WAL, the
// snapshot codec and the store's manifest machinery touch goes through one
// of these calls.
type FS interface {
	// OpenFile is os.OpenFile. Opening a directory read-only for Sync is
	// allowed, as on POSIX.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat is os.Stat.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// Remove is os.Remove.
	Remove(name string) error
	// Rename is os.Rename.
	Rename(oldpath, newpath string) error
	// Truncate is os.Truncate.
	Truncate(name string, size int64) error
}

// Disk is the passthrough FS: the real filesystem via the os package.
var Disk FS = osFS{}

// Or returns f unless it is nil, in which case the real disk. Packages
// accepting an optional FS in their options normalize through it.
func Or(f FS) FS {
	if f == nil {
		return Disk
	}
	return f
}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
