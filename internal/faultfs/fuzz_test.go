package faultfs

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParsePlan throws arbitrary specs at the plan parser and, when one
// parses, drives a small workload through the resulting Inject: the engine
// must never panic, and torn writes must always land a strict prefix.
func FuzzParsePlan(f *testing.F) {
	f.Add("enospc@120+40,sync@300+3%wal-")
	f.Add("flip@0+1,short@2+5,rename@1")
	f.Add("sync@0")
	f.Add("write@1+2%seg,read@0+1")
	f.Add("open@0+1,remove@0,truncate@3")
	f.Fuzz(func(t *testing.T, spec string) {
		rules, err := ParsePlan(spec)
		if err != nil {
			return
		}
		if len(rules) == 0 {
			t.Fatal("ParsePlan returned no rules without error")
		}
		dir := t.TempDir()
		in := NewInject(Disk, rules...)
		path := filepath.Join(dir, "wal-0001.seg")
		payload := []byte("0123456789abcdef")
		for i := 0; i < 8; i++ {
			fh, err := in.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
			if err != nil {
				continue
			}
			n, err := fh.Write(payload)
			if err == nil && n != len(payload) {
				t.Fatalf("clean write reported %d of %d bytes", n, len(payload))
			}
			if err != nil && n > len(payload) {
				t.Fatalf("torn write reported %d bytes for a %d-byte write", n, len(payload))
			}
			fh.Sync()
			fh.Close()
			in.ReadFile(path)
			in.Rename(path, path+".x")
			in.Rename(path+".x", path)
			in.Truncate(path, 0)
			in.Remove(path)
		}
		in.Fired()
		in.Armed()
		in.Log()
		in.Disarm()
	})
}
