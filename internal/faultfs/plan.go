package faultfs

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePlan parses the CLI fault-schedule DSL into rules. A plan is a
// comma-separated list of rules of the form
//
//	kind@after[+count][%path]
//
// where kind names the fault, after skips that many matching operations
// before the first fire, count bounds how many fire (omitted = every later
// one), and path restricts the rule to files whose base name contains it.
// Kinds:
//
//	sync      fsync fails
//	write     write fails, nothing lands
//	short     torn write: half the data lands, then the write fails
//	enospc    write fails with ENOSPC
//	rename    rename fails (destination never appears)
//	read      read fails
//	flip      read silently delivers one flipped bit
//	open      open fails
//	remove    remove fails
//	truncate  truncate fails
//
// Example: "enospc@120+40,sync@300+3%wal-" injects a 40-write ENOSPC
// window starting at the 120th write, plus 3 fsync failures on WAL
// segments starting at the 300th WAL fsync.
func ParsePlan(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultfs: empty fault plan %q", spec)
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	var r Rule
	body := s
	if i := strings.IndexByte(body, '%'); i >= 0 {
		r.Path = body[i+1:]
		body = body[:i]
		if r.Path == "" {
			return r, fmt.Errorf("faultfs: rule %q has an empty path filter", s)
		}
	}
	kind := body
	if i := strings.IndexByte(body, '@'); i >= 0 {
		kind = body[:i]
		window := body[i+1:]
		count := ""
		if j := strings.IndexByte(window, '+'); j >= 0 {
			count = window[j+1:]
			window = window[:j]
		}
		after, err := strconv.Atoi(window)
		if err != nil || after < 0 {
			return r, fmt.Errorf("faultfs: rule %q: bad after %q", s, window)
		}
		r.After = after
		if count != "" {
			c, err := strconv.Atoi(count)
			if err != nil || c <= 0 {
				return r, fmt.Errorf("faultfs: rule %q: bad count %q", s, count)
			}
			r.Count = c
		}
	}
	switch kind {
	case "sync":
		r.Op = OpSync
	case "write":
		r.Op = OpWrite
	case "short":
		r.Op = OpWrite
		r.ShortBy = -1
	case "enospc":
		r.Op = OpWrite
		r.Err = ErrNoSpace
	case "rename":
		r.Op = OpRename
	case "read":
		r.Op = OpRead
	case "flip":
		r.Op = OpRead
		r.Flip = true
	case "open":
		r.Op = OpOpen
	case "remove":
		r.Op = OpRemove
	case "truncate":
		r.Op = OpTruncate
	default:
		return r, fmt.Errorf("faultfs: rule %q: unknown fault kind %q", s, kind)
	}
	return r, nil
}
