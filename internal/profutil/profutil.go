// Package profutil holds the pprof plumbing shared by the qpgc and
// qpgcbench binaries: both expose -cpuprofile/-memprofile so perf work
// can capture data from the exact serving or experiment path, and both
// must do the create/start/stop/close dance identically.
package profutil

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile to path and returns the stop function,
// which finishes the profile and closes the file. An empty path is a
// no-op (the returned stop never fails then).
func StartCPU(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeap dumps an up-to-date heap profile to path; an empty path is a
// no-op. It runs a GC first so the allocation statistics are current.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	return pprof.WriteHeapProfile(f)
}
