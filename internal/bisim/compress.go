package bisim

import (
	"slices"

	"repro/internal/graph"
)

// Compressed is the result of graph pattern preserving compression
// (Section 4.1): the quotient Gr of G under the maximum bisimulation Rb,
// together with the node mapping R and the inverse member index used by
// the post-processing function P.
type Compressed struct {
	// Gr is the compressed graph: one node per bisimulation class, labeled
	// with the common label of its members, with an edge ([v],[w]) whenever
	// some member edge (v',w') exists — including self-loops when a class
	// has internal edges (compressB, Fig. 7, lines 7–9).
	Gr *graph.Graph
	// blockOf maps each node of G to its class node in Gr (the mapping R).
	blockOf []graph.Node
	// Members lists the original nodes of each class (inverse index).
	Members [][]graph.Node
}

// ClassOf returns R(v), the Gr node representing v.
func (c *Compressed) ClassOf(v graph.Node) graph.Node { return c.blockOf[v] }

// ClassMap exposes the full node mapping R as a slice indexed by node of G.
// Read-only; used by the snapshot codec.
func (c *Compressed) ClassMap() []graph.Node { return c.blockOf }

// AssembleCompressed packages an externally reconstructed quotient with its
// node mapping into a Compressed value, taking ownership of all arguments.
// Used by the snapshot decoder; the incremental maintainer goes through
// Quotient/QuotientCSR instead.
func AssembleCompressed(gr *graph.Graph, blockOf []graph.Node, members [][]graph.Node) *Compressed {
	return &Compressed{Gr: gr, blockOf: blockOf, Members: members}
}

// NumClasses returns |Vr|.
func (c *Compressed) NumClasses() int { return len(c.Members) }

// Ratio returns PCr = |Gr| / |G|.
func (c *Compressed) Ratio(g *graph.Graph) float64 {
	return float64(c.Gr.Size()) / float64(g.Size())
}

// Engine selects the partition-refinement algorithm used by Compress.
type Engine int

const (
	// EnginePT is Paige–Tarjan, the default (Theorem 4's O(|E| log |V|)).
	EnginePT Engine = iota
	// EngineNaive is global signature refinement.
	EngineNaive
	// EngineStratified is the DPP rank-stratified algorithm.
	EngineStratified
)

// Compress computes the pattern preserving compression R(G) of g
// (algorithm compressB, Fig. 7) using Paige–Tarjan refinement.
func Compress(g *graph.Graph) *Compressed { return CompressWith(g, EnginePT) }

// CompressWith is Compress with an explicit choice of refinement engine.
// All engines produce the identical (maximum bisimulation) partition. The
// Paige–Tarjan path freezes one CSR snapshot and shares it between the
// refinement and the quotient construction.
func CompressWith(g *graph.Graph, e Engine) *Compressed {
	switch e {
	case EngineNaive:
		return quotient(g.Freeze(), RefineNaive(g))
	case EngineStratified:
		return quotient(g.Freeze(), RefineStratified(g))
	default:
		c := g.Freeze()
		return quotient(c, RefinePTCSR(c))
	}
}

// Quotient materializes the compressed graph for an arbitrary bisimulation
// partition p of g. The label table is shared with g: unlike reachability
// compression, pattern compression must preserve labels.
func Quotient(g *graph.Graph, p *Partition) *Compressed {
	return quotient(g.Freeze(), p)
}

// QuotientCSR is Quotient over an already-frozen snapshot, for callers that
// hold a CSR of the current graph state (e.g. the concurrent store freezes
// G once per epoch and shares the snapshot between the quotient rebuild and
// the read path). The partition must describe exactly the graph state c was
// frozen from.
func QuotientCSR(c *graph.CSR, p *Partition) *Compressed {
	return quotient(c, p)
}

// quotient builds the compressed graph in bulk: the class edges (including
// self-loops from intra-class member edges) are projected to packed pairs,
// sort-deduplicated, and handed to graph.BuildFromSortedAdj — no per-edge
// sorted insertion and no hash-based dedup.
func quotient(c *graph.CSR, p *Partition) *Compressed {
	numBlocks := p.NumBlocks()
	pairs := make([]uint64, 0, c.NumEdges())
	c.Edges(func(u, v graph.Node) bool {
		a, b := p.BlockOf[u], p.BlockOf[v]
		pairs = append(pairs, uint64(uint32(a))<<32|uint64(uint32(b)))
		return true
	})
	slices.Sort(pairs)
	pairs = slices.Compact(pairs)

	outDeg := make([]int32, numBlocks)
	for _, pr := range pairs {
		outDeg[pr>>32]++
	}
	flat := make([]graph.Node, len(pairs))
	rows := make([][]graph.Node, numBlocks)
	labelArr := make([]graph.Label, numBlocks)
	off := int32(0)
	for b := 0; b < numBlocks; b++ {
		rows[b] = flat[off : off : off+outDeg[b]]
		off += outDeg[b]
		labelArr[b] = c.Label(p.Blocks[b][0])
	}
	for _, pr := range pairs {
		a := pr >> 32
		rows[a] = append(rows[a], graph.Node(uint32(pr)))
	}
	gr := graph.BuildFromSortedAdj(c.Labels(), labelArr, rows)

	// Copy the member lists into one flat backing array (the Compressed
	// value must not alias the partition's storage).
	memFlat := make([]graph.Node, 0, c.NumNodes())
	members := make([][]graph.Node, numBlocks)
	for b := range p.Blocks {
		start := len(memFlat)
		memFlat = append(memFlat, p.Blocks[b]...)
		members[b] = memFlat[start:len(memFlat):len(memFlat)]
	}
	return &Compressed{
		Gr:      gr,
		blockOf: append([]graph.Node(nil), p.BlockOf...),
		Members: members,
	}
}
