package bisim

import (
	"repro/internal/graph"
)

// Compressed is the result of graph pattern preserving compression
// (Section 4.1): the quotient Gr of G under the maximum bisimulation Rb,
// together with the node mapping R and the inverse member index used by
// the post-processing function P.
type Compressed struct {
	// Gr is the compressed graph: one node per bisimulation class, labeled
	// with the common label of its members, with an edge ([v],[w]) whenever
	// some member edge (v',w') exists — including self-loops when a class
	// has internal edges (compressB, Fig. 7, lines 7–9).
	Gr *graph.Graph
	// blockOf maps each node of G to its class node in Gr (the mapping R).
	blockOf []graph.Node
	// Members lists the original nodes of each class (inverse index).
	Members [][]graph.Node
}

// ClassOf returns R(v), the Gr node representing v.
func (c *Compressed) ClassOf(v graph.Node) graph.Node { return c.blockOf[v] }

// NumClasses returns |Vr|.
func (c *Compressed) NumClasses() int { return len(c.Members) }

// Ratio returns PCr = |Gr| / |G|.
func (c *Compressed) Ratio(g *graph.Graph) float64 {
	return float64(c.Gr.Size()) / float64(g.Size())
}

// Engine selects the partition-refinement algorithm used by Compress.
type Engine int

const (
	// EnginePT is Paige–Tarjan, the default (Theorem 4's O(|E| log |V|)).
	EnginePT Engine = iota
	// EngineNaive is global signature refinement.
	EngineNaive
	// EngineStratified is the DPP rank-stratified algorithm.
	EngineStratified
)

// Compress computes the pattern preserving compression R(G) of g
// (algorithm compressB, Fig. 7) using Paige–Tarjan refinement.
func Compress(g *graph.Graph) *Compressed { return CompressWith(g, EnginePT) }

// CompressWith is Compress with an explicit choice of refinement engine.
// All engines produce the identical (maximum bisimulation) partition.
func CompressWith(g *graph.Graph, e Engine) *Compressed {
	var p *Partition
	switch e {
	case EngineNaive:
		p = RefineNaive(g)
	case EngineStratified:
		p = RefineStratified(g)
	default:
		p = RefinePT(g)
	}
	return Quotient(g, p)
}

// Quotient materializes the compressed graph for an arbitrary bisimulation
// partition p of g. The label table is shared with g: unlike reachability
// compression, pattern compression must preserve labels.
func Quotient(g *graph.Graph, p *Partition) *Compressed {
	numBlocks := p.NumBlocks()
	gr := graph.New(g.Labels())
	for b := 0; b < numBlocks; b++ {
		gr.AddNode(g.Label(p.Blocks[b][0]))
	}
	g.Edges(func(u, v graph.Node) bool {
		gr.AddEdge(p.BlockOf[u], p.BlockOf[v])
		return true
	})
	members := make([][]graph.Node, numBlocks)
	for b := range p.Blocks {
		members[b] = append([]graph.Node(nil), p.Blocks[b]...)
	}
	return &Compressed{
		Gr:      gr,
		blockOf: append([]graph.Node(nil), p.BlockOf...),
		Members: members,
	}
}
