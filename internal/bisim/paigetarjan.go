package bisim

import (
	"repro/internal/graph"
)

// RefinePT computes the maximum bisimulation partition with the
// Paige–Tarjan relational coarsest partition algorithm [24]: three-way
// splitting with per-edge counters and the "process the smaller half"
// strategy, running in O(|E| log |V|) time — the bound used by Theorem 4
// of the paper for the compression function R.
func RefinePT(g *graph.Graph) *Partition { return RefinePTCSR(g.Freeze()) }

// RefinePTCSR is RefinePT over a frozen CSR snapshot. Callers that already
// hold a snapshot (e.g. CompressWith, which also feeds it to the quotient
// construction) avoid a second Freeze.
func RefinePTCSR(c *graph.CSR) *Partition {
	pt := newPTState(c)
	pt.run()
	return newPartition(pt.pblockOf)
}

type pblock struct {
	nodes  []graph.Node // members; swap-remove order
	xblock int32        // owning X-block
	posInX int32        // index within the X-block's pblocks list
	// twin/twin2 are scratch fields used during a split round.
	twin int32
}

type xblock struct {
	pblocks []int32
	inC     bool
}

type ptState struct {
	pblockOf []int32 // node -> pblock id
	posInP   []int32 // node -> index within its pblock's nodes
	pblocks  []pblock
	xblocks  []xblock
	queueC   []int32 // compound X-blocks to process

	// Edge-indexed structures in CSR in-edge order: edge id e is position e
	// of the snapshot's flat predecessor array, so eSrc aliases that array
	// and the edges into y are exactly the id range [inOff[y], inOff[y+1])
	// — no per-node edge-id lists are materialized at all.
	eSrc  []graph.Node
	inOff []int32

	// Counters count the edges from one source node into one X-block; all
	// current edges (x, y) with y in X-block S share the counter c(x, S).
	// They live in an int32 arena addressed by index: countRef holds no
	// pointers, so counter rewrites emit no GC write barriers and the
	// arena is never scanned.
	counters []int32
	countRef []int32 // per edge: arena index of c(src, X-block of dst)

	// Scratch, reused across rounds.
	countB     []int32 // per node: edges into current splitter B
	oldCnt     []int32 // per node: arena index of representative c(x, S)
	newCntAt   []int32 // per node: arena index of fresh c(x, B), -1 outside a round
	touched    []int32 // pblocks touched by the current split
	preB       []graph.Node
	onlyB      []graph.Node
	edgesIntoB []int32
}

// newCounter appends a counter with initial value v to the arena and
// returns its index.
func (pt *ptState) newCounter(v int32) int32 {
	pt.counters = append(pt.counters, v)
	return int32(len(pt.counters) - 1)
}

func newPTState(c *graph.CSR) *ptState {
	n := c.NumNodes()
	pt := &ptState{
		pblockOf: make([]int32, n),
		posInP:   make([]int32, n),
		eSrc:     c.InAdj(),
		inOff:    c.InOffsets(),
		countB:   make([]int32, n),
		oldCnt:   make([]int32, n),
		newCntAt: make([]int32, n),
	}
	for i := range pt.newCntAt {
		pt.newCntAt[i] = -1
	}

	// One initial counter per node: all its edges lead into the single
	// X-block V.
	m := c.NumEdges()
	pt.counters = make([]int32, 0, n)
	pt.countRef = make([]int32, m)
	perSrc := make([]int32, n)
	for i := range perSrc {
		perSrc[i] = -1
	}
	for e := 0; e < m; e++ {
		x := pt.eSrc[e]
		if perSrc[x] < 0 {
			perSrc[x] = pt.newCounter(0)
		}
		pt.counters[perSrc[x]]++
		pt.countRef[e] = perSrc[x]
	}

	// Initial P: label blocks, pre-split by "has successors" so that P is
	// stable w.r.t. the initial X-block V.
	type key struct {
		l    graph.Label
		leaf bool
	}
	ids := make(map[key]int32)
	for v := 0; v < n; v++ {
		k := key{c.Label(graph.Node(v)), c.OutDegree(graph.Node(v)) == 0}
		id, ok := ids[k]
		if !ok {
			id = int32(len(pt.pblocks))
			pt.pblocks = append(pt.pblocks, pblock{xblock: 0, twin: -1})
			ids[k] = id
		}
		pt.pblockOf[v] = id
		b := &pt.pblocks[id]
		pt.posInP[v] = int32(len(b.nodes))
		b.nodes = append(b.nodes, graph.Node(v))
	}

	// Single X-block holding every P-block.
	x0 := xblock{}
	for id := range pt.pblocks {
		pt.pblocks[id].posInX = int32(len(x0.pblocks))
		x0.pblocks = append(x0.pblocks, int32(id))
	}
	pt.xblocks = append(pt.xblocks, x0)
	if len(x0.pblocks) >= 2 {
		pt.xblocks[0].inC = true
		pt.queueC = append(pt.queueC, 0)
	}
	return pt
}

func (pt *ptState) run() {
	for len(pt.queueC) > 0 {
		sid := pt.queueC[len(pt.queueC)-1]
		pt.queueC = pt.queueC[:len(pt.queueC)-1]
		pt.xblocks[sid].inC = false
		if len(pt.xblocks[sid].pblocks) < 2 {
			continue
		}
		pt.step(sid)
	}
}

// step performs one Paige–Tarjan refinement round: carve the smaller of
// S's first two P-blocks out into its own X-block and split P three ways.
func (pt *ptState) step(sid int32) {
	s := &pt.xblocks[sid]

	// B := smaller of the first two P-blocks (guarantees |B| <= |S|/2).
	bid := s.pblocks[0]
	if len(pt.pblocks[s.pblocks[1]].nodes) < len(pt.pblocks[bid].nodes) {
		bid = s.pblocks[1]
	}
	pt.detachFromX(bid)
	newX := int32(len(pt.xblocks))
	pt.xblocks = append(pt.xblocks, xblock{pblocks: []int32{bid}})
	pt.pblocks[bid].xblock = newX
	pt.pblocks[bid].posInX = 0
	if len(pt.xblocks[sid].pblocks) >= 2 && !pt.xblocks[sid].inC {
		pt.xblocks[sid].inC = true
		pt.queueC = append(pt.queueC, sid)
	}

	// Compute pre(B) with multiplicities and remember one representative
	// old counter c(x, S) per source.
	bNodes := pt.pblocks[bid].nodes
	preB := pt.preB[:0]
	edgesIntoB := pt.edgesIntoB[:0]
	for _, y := range bNodes {
		for e := pt.inOff[y]; e < pt.inOff[y+1]; e++ {
			x := pt.eSrc[e]
			if pt.countB[x] == 0 {
				preB = append(preB, x)
				pt.oldCnt[x] = pt.countRef[e]
			}
			pt.countB[x]++
			edgesIntoB = append(edgesIntoB, e)
		}
	}

	// Select, before any counter update, the sources with no edge into
	// S \ B: countB[x] == c(x, S).
	onlyB := pt.onlyB[:0]
	for _, x := range preB {
		if pt.countB[x] == pt.counters[pt.oldCnt[x]] {
			onlyB = append(onlyB, x)
		}
	}

	// Split 1: w.r.t. pre(B).
	pt.splitBy(preB)
	// Split 2: w.r.t. pre(B) \ pre(S\B).
	pt.splitBy(onlyB)

	// Counter maintenance: edges into B move from c(x,S) to c(x,B).
	for _, e := range edgesIntoB {
		x := pt.eSrc[e]
		ci := pt.newCntAt[x]
		if ci < 0 {
			ci = pt.newCounter(pt.countB[x])
			pt.newCntAt[x] = ci
		}
		pt.counters[pt.countRef[e]]--
		pt.countRef[e] = ci
	}

	// Reset scratch.
	for _, x := range preB {
		pt.countB[x] = 0
		pt.newCntAt[x] = -1
	}
	pt.preB = preB[:0]
	pt.onlyB = onlyB[:0]
	pt.edgesIntoB = edgesIntoB[:0]
}

// detachFromX removes P-block bid from its current X-block's list.
func (pt *ptState) detachFromX(bid int32) {
	b := &pt.pblocks[bid]
	x := &pt.xblocks[b.xblock]
	last := x.pblocks[len(x.pblocks)-1]
	pos := b.posInX
	x.pblocks[pos] = last
	pt.pblocks[last].posInX = pos
	x.pblocks = x.pblocks[:len(x.pblocks)-1]
}

// splitBy splits every P-block D into D ∩ marked and D \ marked. Blocks
// fully inside marked are left intact (the move is reverted). New blocks
// join D's X-block, which becomes compound and is queued.
func (pt *ptState) splitBy(marked []graph.Node) {
	pt.touched = pt.touched[:0]
	for _, x := range marked {
		did := pt.pblockOf[x]
		d := &pt.pblocks[did]
		if d.twin == -1 {
			d.twin = int32(len(pt.pblocks))
			pt.pblocks = append(pt.pblocks, pblock{xblock: d.xblock, twin: -1})
			d = &pt.pblocks[did] // re-take: append may have moved the backing array
			pt.touched = append(pt.touched, did)
		}
		twin := &pt.pblocks[d.twin]
		// Swap-remove x from d.
		pos := pt.posInP[x]
		last := d.nodes[len(d.nodes)-1]
		d.nodes[pos] = last
		pt.posInP[last] = pos
		d.nodes = d.nodes[:len(d.nodes)-1]
		// Append to twin.
		pt.pblockOf[x] = d.twin
		pt.posInP[x] = int32(len(twin.nodes))
		twin.nodes = append(twin.nodes, x)
	}
	for _, did := range pt.touched {
		d := &pt.pblocks[did]
		tid := d.twin
		d.twin = -1
		twin := &pt.pblocks[tid]
		if len(d.nodes) == 0 {
			// Whole block moved: revert by adopting the twin's nodes.
			d.nodes, twin.nodes = twin.nodes, nil
			for i, v := range d.nodes {
				pt.pblockOf[v] = did
				pt.posInP[v] = int32(i)
			}
			// tid stays as a dead empty block; it was never attached to X.
			continue
		}
		// Genuine split: attach twin to D's X-block.
		x := &pt.xblocks[d.xblock]
		twin.posInX = int32(len(x.pblocks))
		x.pblocks = append(x.pblocks, tid)
		if len(x.pblocks) >= 2 && !x.inC {
			x.inC = true
			pt.queueC = append(pt.queueC, d.xblock)
		}
	}
}
