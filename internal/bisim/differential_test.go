package bisim

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestCompressCSRPathMatchesNaiveEngine: differential test that the
// CSR-backed default pipeline (RefinePTCSR + sort-dedup bulk quotient)
// yields exactly the partition and quotient of the naive reference engine,
// which still walks the mutable graph.
func TestCompressCSRPathMatchesNaiveEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(50)
		g := randomLabeled(rng, n, rng.Intn(3*n), 1+rng.Intn(4))
		fast := Compress(g) // EnginePT over CSR
		ref := RefineNaive(g)

		// Identical partitions: both numberings are canonical.
		refC := Quotient(g, ref)
		for v := 0; v < n; v++ {
			if fast.ClassOf(graph.Node(v)) != refC.ClassOf(graph.Node(v)) {
				t.Fatalf("trial %d: ClassOf(%d) differs: PT %d vs naive %d",
					trial, v, fast.ClassOf(graph.Node(v)), refC.ClassOf(graph.Node(v)))
			}
		}

		// Identical quotient graphs: the definition fixes Gr's edges as
		// {([u],[v]) : (u,v) ∈ E}, so equal partitions force equal graphs.
		if fast.Gr.NumNodes() != refC.Gr.NumNodes() || fast.Gr.NumEdges() != refC.Gr.NumEdges() {
			t.Fatalf("trial %d: quotient sizes differ: (%d,%d) vs (%d,%d)", trial,
				fast.Gr.NumNodes(), fast.Gr.NumEdges(), refC.Gr.NumNodes(), refC.Gr.NumEdges())
		}
		same := true
		fast.Gr.Edges(func(u, v graph.Node) bool {
			if !refC.Gr.HasEdge(u, v) {
				same = false
			}
			return same
		})
		if !same {
			t.Fatalf("trial %d: quotient edge sets differ", trial)
		}

		// Quotient edges match the definition directly.
		gr := fast.Gr
		seen := make(map[[2]graph.Node]bool)
		g.Edges(func(u, v graph.Node) bool {
			seen[[2]graph.Node{fast.ClassOf(u), fast.ClassOf(v)}] = true
			return true
		})
		if gr.NumEdges() != len(seen) {
			t.Fatalf("trial %d: Gr has %d edges, definition gives %d", trial, gr.NumEdges(), len(seen))
		}
		for e := range seen {
			if !gr.HasEdge(e[0], e[1]) {
				t.Fatalf("trial %d: Gr missing class edge (%d,%d)", trial, e[0], e[1])
			}
		}
	}
}
