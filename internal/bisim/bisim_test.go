package bisim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// labeledGraph builds a graph from per-node labels and an edge list.
func labeledGraph(labels []string, edges [][2]graph.Node) *graph.Graph {
	g := graph.New(nil)
	for _, l := range labels {
		g.AddNodeNamed(l)
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func randomLabeled(rng *rand.Rand, n, m, nlabels int) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNodeNamed(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
	}
	return g
}

// bruteBisim computes the maximum bisimulation by the textbook greatest
// fixpoint: start from the label relation and delete pairs violating the
// simulation conditions until stable. O(V^2 E) — only for tiny graphs.
func bruteBisim(g *graph.Graph) [][]bool {
	n := g.NumNodes()
	rel := make([][]bool, n)
	for u := 0; u < n; u++ {
		rel[u] = make([]bool, n)
		for v := 0; v < n; v++ {
			rel[u][v] = g.Label(graph.Node(u)) == g.Label(graph.Node(v))
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if !rel[u][v] {
					continue
				}
				ok := true
				for _, uc := range g.Successors(graph.Node(u)) {
					found := false
					for _, vc := range g.Successors(graph.Node(v)) {
						if rel[uc][vc] {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if ok {
					for _, vc := range g.Successors(graph.Node(v)) {
						found := false
						for _, uc := range g.Successors(graph.Node(u)) {
							if rel[uc][vc] {
								found = true
								break
							}
						}
						if !found {
							ok = false
							break
						}
					}
				}
				if !ok {
					rel[u][v] = false
					changed = true
				}
			}
		}
	}
	return rel
}

func partitionMatchesRelation(p *Partition, rel [][]bool) bool {
	n := len(p.BlockOf)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if (p.BlockOf[u] == p.BlockOf[v]) != rel[u][v] {
				return false
			}
		}
	}
	return true
}

func TestPaperFig6Example(t *testing.T) {
	// From Fig. 6 / Example 4: A1 has one B child with a C child; A2 has B
	// children with C and D children. A1 and A2 must not be bisimilar, but
	// structurally identical copies must be.
	//
	// Nodes: A1=0 B1=1 C1=2 | A2=3 B2=4 C2=5 B3=6 D1=7 | A5=8 B5=9 C5=10
	// A5 copies A1's shape exactly.
	g := labeledGraph(
		[]string{"A", "B", "C", "A", "B", "C", "B", "D", "A", "B", "C"},
		[][2]graph.Node{
			{0, 1}, {1, 2},
			{3, 4}, {4, 5}, {3, 6}, {6, 7},
			{8, 9}, {9, 10},
		})
	for _, engine := range []Engine{EngineNaive, EnginePT, EngineStratified} {
		c := CompressWith(g, engine)
		if c.ClassOf(0) == c.ClassOf(3) {
			t.Fatalf("engine %v: A1 and A2 wrongly bisimilar", engine)
		}
		if c.ClassOf(0) != c.ClassOf(8) {
			t.Fatalf("engine %v: identical A nodes not bisimilar", engine)
		}
		if c.ClassOf(1) != c.ClassOf(9) || c.ClassOf(2) != c.ClassOf(10) {
			t.Fatalf("engine %v: identical subtrees not merged", engine)
		}
		if c.ClassOf(2) == c.ClassOf(7) {
			t.Fatalf("engine %v: C and D merged despite labels", engine)
		}
	}
}

func TestBisimVsReachabilityEquivalenceDiffer(t *testing.T) {
	// Section 3's counterexample shape: C1 -> E1, C2 -> E1, C2 -> E2.
	// C1 and C2 are bisimilar (both have only E children) but NOT
	// reachability equivalent (C2 reaches E2, C1 does not).
	g := labeledGraph([]string{"C", "C", "E", "E"},
		[][2]graph.Node{{0, 2}, {1, 2}, {1, 3}})
	p := RefineNaive(g)
	if p.BlockOf[0] != p.BlockOf[1] {
		t.Fatal("C1 and C2 should be bisimilar")
	}
	if p.BlockOf[2] != p.BlockOf[3] {
		t.Fatal("E1 and E2 should be bisimilar")
	}
}

func TestCycleBisimilarity(t *testing.T) {
	// Two disjoint 2-cycles with matching labels are fully bisimilar —
	// the case that defeats one-step signature merging and requires a
	// proper coarsest computation.
	g := labeledGraph([]string{"A", "B", "A", "B"},
		[][2]graph.Node{{0, 1}, {1, 0}, {2, 3}, {3, 2}})
	for _, engine := range []Engine{EngineNaive, EnginePT, EngineStratified} {
		c := CompressWith(g, engine)
		if c.NumClasses() != 2 {
			t.Fatalf("engine %v: classes = %d, want 2", engine, c.NumClasses())
		}
		if c.ClassOf(0) != c.ClassOf(2) || c.ClassOf(1) != c.ClassOf(3) {
			t.Fatalf("engine %v: cycles not merged", engine)
		}
		// Quotient must be the 2-cycle A <-> B.
		if c.Gr.NumEdges() != 2 {
			t.Fatalf("engine %v: Gr edges = %d, want 2", engine, c.Gr.NumEdges())
		}
	}
}

func TestSelfLoopVsTwoCycle(t *testing.T) {
	// A self-loop A and a 2-cycle of As are bisimilar (classic).
	g := labeledGraph([]string{"A", "A", "A"},
		[][2]graph.Node{{0, 0}, {1, 2}, {2, 1}})
	for _, engine := range []Engine{EngineNaive, EnginePT, EngineStratified} {
		c := CompressWith(g, engine)
		if c.NumClasses() != 1 {
			t.Fatalf("engine %v: classes = %d, want 1", engine, c.NumClasses())
		}
		if !c.Gr.HasEdge(0, 0) {
			t.Fatalf("engine %v: quotient lost self-loop", engine)
		}
	}
}

func TestEnginesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(12)
		g := randomLabeled(rng, n, rng.Intn(3*n), 1+rng.Intn(3))
		rel := bruteBisim(g)
		for _, engine := range []Engine{EngineNaive, EnginePT, EngineStratified} {
			var p *Partition
			switch engine {
			case EngineNaive:
				p = RefineNaive(g)
			case EnginePT:
				p = RefinePT(g)
			default:
				p = RefineStratified(g)
			}
			if !partitionMatchesRelation(p, rel) {
				t.Fatalf("trial %d engine %v: partition disagrees with brute force\ngraph %v edges %v\nblocks %v",
					trial, engine, g, g.EdgeList(), p.Blocks)
			}
		}
	}
}

func TestEnginesAgreeOnLargerRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		g := randomLabeled(rng, n, rng.Intn(4*n), 1+rng.Intn(4))
		a := RefineNaive(g)
		b := RefinePT(g)
		c := RefineStratified(g)
		return a.Same(b) && b.Same(c) && IsStable(g, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCanonicalNumbering(t *testing.T) {
	// Blocks must be numbered by smallest member, making Same order-free.
	p := newPartition([]int32{7, 7, 3, 3, 9})
	if p.BlockOf[0] != 0 || p.BlockOf[2] != 1 || p.BlockOf[4] != 2 {
		t.Fatalf("canonical numbering wrong: %v", p.BlockOf)
	}
	q := newPartition([]int32{0, 0, 1, 1, 2})
	if !p.Same(q) {
		t.Fatal("identical partitions with different raw ids not Same")
	}
}

func TestRanksPaperDefinition(t *testing.T) {
	// 0 -> 1 -> 2 (chain), 3 <-> 4 (bottom cycle), 5 -> 3 (above cycle),
	// 6 isolated leaf.
	g := labeledGraph([]string{"A", "A", "A", "A", "A", "A", "A"},
		[][2]graph.Node{{0, 1}, {1, 2}, {3, 4}, {4, 3}, {5, 3}})
	r := ComputeRanks(g)
	if r.Of[2] != 0 || r.Of[6] != 0 {
		t.Fatalf("leaf ranks: %v", r.Of)
	}
	if r.Of[1] != 1 || r.Of[0] != 2 {
		t.Fatalf("chain ranks: %v", r.Of)
	}
	if r.Of[3] != RankNegInf || r.Of[4] != RankNegInf {
		t.Fatalf("bottom cycle ranks: %v", r.Of)
	}
	if r.Of[5] != RankNegInf {
		// 5's only child is NWF with rank -∞, so rb(5) = -∞ per case (c).
		t.Fatalf("rank of node above bottom cycle: %v", r.Of[5])
	}
	if !r.WF[0] || !r.WF[1] || !r.WF[2] || !r.WF[6] {
		t.Fatal("chain/leaf nodes should be WF")
	}
	if r.WF[3] || r.WF[4] || r.WF[5] {
		t.Fatal("cycle-reaching nodes should be NWF")
	}
}

func TestRanksCycleAboveLeaf(t *testing.T) {
	// Cycle {0,1} with an exit edge 1 -> 2 (leaf): the cycle is NWF with
	// finite rank max(rb(2)+1)=1... rb uses WF children +1: rb(2)=0 WF, so
	// rb(cycle)=1.
	g := labeledGraph([]string{"A", "A", "B"},
		[][2]graph.Node{{0, 1}, {1, 0}, {1, 2}})
	r := ComputeRanks(g)
	if r.Of[2] != 0 {
		t.Fatalf("leaf rank = %d", r.Of[2])
	}
	if r.Of[0] != 1 || r.Of[1] != 1 {
		t.Fatalf("cycle ranks = %v, want 1", r.Of)
	}
	if r.WF[0] || r.WF[1] {
		t.Fatal("cycle nodes must be NWF")
	}
	if r.Max != 1 {
		t.Fatalf("Max = %d, want 1", r.Max)
	}
}

func TestBisimilarNodesShareRank(t *testing.T) {
	// Lemma 9(1): rb(u) = rb(v) whenever (u,v) ∈ Rb.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randomLabeled(rng, n, rng.Intn(3*n), 2)
		p := RefineNaive(g)
		r := ComputeRanks(g)
		for _, block := range p.Blocks {
			for _, v := range block[1:] {
				if r.Of[v] != r.Of[block[0]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuotientStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		g := randomLabeled(rng, n, rng.Intn(3*n), 3)
		c := Compress(g)
		if err := c.Gr.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.Gr.Size() > g.Size() {
			t.Fatal("compression grew the graph")
		}
		// Labels preserved.
		for b, ms := range c.Members {
			for _, v := range ms {
				if g.Label(v) != c.Gr.Label(graph.Node(b)) {
					t.Fatal("class label differs from member label")
				}
				if c.ClassOf(v) != graph.Node(b) {
					t.Fatal("Members/blockOf inconsistent")
				}
			}
		}
		// Every member edge has a class edge, and every class edge has a
		// member edge witness.
		g.Edges(func(u, v graph.Node) bool {
			if !c.Gr.HasEdge(c.ClassOf(u), c.ClassOf(v)) {
				t.Fatalf("member edge (%d,%d) missing in quotient", u, v)
			}
			return true
		})
		c.Gr.Edges(func(a, b graph.Node) bool {
			found := false
			for _, u := range c.Members[a] {
				for _, w := range g.Successors(u) {
					if c.ClassOf(w) == b {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("class edge (%d,%d) has no member witness", a, b)
			}
			return true
		})
	}
}

func TestCompressSharesLabelTable(t *testing.T) {
	g := labeledGraph([]string{"A", "B"}, [][2]graph.Node{{0, 1}})
	c := Compress(g)
	if c.Gr.Labels() != g.Labels() {
		t.Fatal("pattern compression must share the label table")
	}
}
