// Package bisim computes maximum (coarsest) bisimulation partitions of
// labeled directed graphs, the engine behind graph pattern preserving
// compression (Section 4 of the paper).
//
// A bisimulation relation B on G=(V,E,L) relates u,v iff L(u)=L(v), every
// child of u is B-related to some child of v, and vice versa. The maximum
// bisimulation Rb is an equivalence relation (Lemma 5); its quotient is the
// compressed graph of compressB.
//
// Three interchangeable engines are provided and cross-checked by tests:
//
//   - RefineNaive: global signature refinement. Starting from the label
//     partition it repeatedly splits blocks whose members have different
//     successor-block sets. Refinement-only from the coarsest start
//     converges to the coarsest stable partition, i.e. the maximum
//     bisimulation — simple and obviously correct, O(rounds·|E|).
//   - RefinePT: the Paige–Tarjan three-way splitting algorithm [24] with
//     the "process the smaller half" strategy and per-edge counters,
//     O(|E| log |V|) — the bound quoted by Theorem 4.
//   - RefineStratified: the Dovier–Piazza–Policriti rank-stratified
//     algorithm [8] (rank.go), which also underlies incremental
//     maintenance (incPCM).
package bisim

import (
	"sort"

	"repro/internal/graph"
)

// Partition assigns every node a block id; bisimilar nodes share a block.
type Partition struct {
	// BlockOf maps node -> block id (dense, 0-based).
	BlockOf []int32
	// Blocks lists the member nodes of each block, each list sorted.
	Blocks [][]graph.Node
}

// NumBlocks returns the number of equivalence classes.
func (p *Partition) NumBlocks() int { return len(p.Blocks) }

// newPartition assembles a Partition from a block id slice, renumbering
// blocks canonically by their smallest member node so that structurally
// equal partitions compare equal regardless of the producing algorithm.
// Raw ids are dense-ish (bounded by the producing engine's block count), so
// the renumbering uses a slice map, and the member lists are carved out of
// one flat array by counting sort.
func newPartition(blockOf []int32) *Partition {
	n := len(blockOf)
	maxRaw := int32(-1)
	for _, raw := range blockOf {
		if raw > maxRaw {
			maxRaw = raw
		}
	}
	rawToCanon := make([]int32, maxRaw+1)
	for i := range rawToCanon {
		rawToCanon[i] = -1
	}
	canonCount := int32(0)
	canon := make([]int32, n)
	for v := 0; v < n; v++ {
		raw := blockOf[v]
		id := rawToCanon[raw]
		if id < 0 {
			id = canonCount
			canonCount++
			rawToCanon[raw] = id
		}
		canon[v] = id
	}
	size := make([]int32, canonCount)
	for _, id := range canon {
		size[id]++
	}
	flat := make([]graph.Node, n)
	blocks := make([][]graph.Node, canonCount)
	off := int32(0)
	for b := int32(0); b < canonCount; b++ {
		blocks[b] = flat[off : off : off+size[b]]
		off += size[b]
	}
	for v := 0; v < n; v++ {
		blocks[canon[v]] = append(blocks[canon[v]], graph.Node(v))
	}
	return &Partition{BlockOf: canon, Blocks: blocks}
}

// Same reports whether p and q are the same partition of the same node set.
// Both are canonically numbered, so equality of BlockOf suffices.
func (p *Partition) Same(q *Partition) bool {
	if len(p.BlockOf) != len(q.BlockOf) {
		return false
	}
	for i := range p.BlockOf {
		if p.BlockOf[i] != q.BlockOf[i] {
			return false
		}
	}
	return true
}

// RefineNaive computes the maximum bisimulation partition by global
// signature refinement.
func RefineNaive(g *graph.Graph) *Partition {
	n := g.NumNodes()
	blockOf := make([]int32, n)
	// Initial partition by label.
	labelBlock := make(map[graph.Label]int32)
	next := int32(0)
	for v := 0; v < n; v++ {
		l := g.Label(graph.Node(v))
		id, ok := labelBlock[l]
		if !ok {
			id = next
			next++
			labelBlock[l] = id
		}
		blockOf[v] = id
	}

	sig := make([]string, n)
	scratch := make([]int32, 0, 16)
	for {
		// Signature: current block id + sorted distinct successor blocks.
		ids := make(map[string]int32)
		newBlockOf := make([]int32, n)
		var nextID int32
		for v := 0; v < n; v++ {
			scratch = scratch[:0]
			for _, w := range g.Successors(graph.Node(v)) {
				scratch = append(scratch, blockOf[w])
			}
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			buf := make([]byte, 0, 4+4*len(scratch))
			buf = appendInt32(buf, blockOf[v])
			prev := int32(-1)
			for _, b := range scratch {
				if b != prev {
					buf = appendInt32(buf, b)
					prev = b
				}
			}
			sig[v] = string(buf)
			id, ok := ids[sig[v]]
			if !ok {
				id = nextID
				nextID++
				ids[sig[v]] = id
			}
			newBlockOf[v] = id
		}
		stable := nextID == next
		blockOf = newBlockOf
		next = nextID
		if stable {
			break
		}
	}
	return newPartition(blockOf)
}

func appendInt32(buf []byte, v int32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// IsStable verifies the partition-stability property that characterizes a
// bisimulation: members of a block share a label, and for every pair of
// blocks (B, B'), either every member of B has a successor in B' or none
// has. Intended for tests.
func IsStable(g *graph.Graph, p *Partition) bool {
	for _, members := range p.Blocks {
		if len(members) == 0 {
			return false
		}
		l := g.Label(members[0])
		ref := succBlockSet(g, p, members[0])
		for _, v := range members[1:] {
			if g.Label(v) != l {
				return false
			}
			got := succBlockSet(g, p, v)
			if len(got) != len(ref) {
				return false
			}
			for b := range ref {
				if !got[b] {
					return false
				}
			}
		}
	}
	return true
}

func succBlockSet(g *graph.Graph, p *Partition, v graph.Node) map[int32]bool {
	out := make(map[int32]bool)
	for _, w := range g.Successors(v) {
		out[p.BlockOf[w]] = true
	}
	return out
}
