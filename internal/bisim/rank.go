package bisim

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// RankNegInf is the rank -∞ assigned to nodes of "bottom" cyclic strongly
// connected components (case (b) of the paper's rank definition,
// Section 5.2).
const RankNegInf = int32(math.MinInt32)

// Ranks holds the bisimulation ranks of Section 5.2: rb(v) stratifies the
// graph so that bisimilar nodes share a rank (Lemma 9(1)) and a node can
// only be affected by updates of strictly lower rank (Lemma 9(2)).
type Ranks struct {
	// Of maps node -> rank; RankNegInf encodes -∞.
	Of []int32
	// WF marks well-founded nodes: nodes that cannot reach any cycle.
	WF []bool
	// Max is the largest finite rank (0 when the graph is empty).
	Max int32
}

// ComputeRanks evaluates the rank definition of the paper:
//
//	rb(v) = 0        if v has no child;
//	rb(v) = -∞       if vscc has no child in Gscc but v has children;
//	rb(v) = max( {rb(v')+1 : WF children v'} ∪ {rb(v'') : NWF children v''} )
//
// where children range over condensation children (nodes within the same
// SCC share a rank by construction).
func ComputeRanks(g *graph.Graph) *Ranks {
	scc := graph.Tarjan(g)
	n := scc.NumComponents()

	// Well-foundedness per component: not cyclic and all condensation
	// children well-founded. Component ids ascend from sinks, so one pass
	// suffices.
	wfComp := make([]bool, n)
	for c := 0; c < n; c++ {
		wf := !scc.Cyclic[c]
		if wf {
			for _, d := range scc.Out[c] {
				if !wfComp[d] {
					wf = false
					break
				}
			}
		}
		wfComp[c] = wf
	}

	rankComp := make([]int32, n)
	for c := 0; c < n; c++ {
		if len(scc.Out[c]) == 0 {
			if scc.Cyclic[c] {
				rankComp[c] = RankNegInf // bottom cycle
			} else {
				rankComp[c] = 0 // leaf
			}
			continue
		}
		r := RankNegInf
		for _, d := range scc.Out[c] {
			var cand int32
			if wfComp[d] {
				cand = rankComp[d] + 1
			} else {
				cand = rankComp[d]
			}
			if cand > r {
				r = cand
			}
		}
		// A cyclic component above only -∞ components keeps -∞; an acyclic
		// node above only -∞ components has rank 0 per case (c) with the
		// convention max(∅ of finite)= ... the paper's max over the child
		// set: children all NWF of rank -∞ gives -∞ for NWF v. For a WF v
		// that is impossible (WF nodes cannot reach cycles), so no special
		// case is needed.
		rankComp[c] = r
	}

	rk := &Ranks{Of: make([]int32, g.NumNodes()), WF: make([]bool, g.NumNodes())}
	for v := 0; v < g.NumNodes(); v++ {
		c := scc.Comp[v]
		rk.Of[v] = rankComp[c]
		rk.WF[v] = wfComp[c]
		if rankComp[c] != RankNegInf && rankComp[c] > rk.Max {
			rk.Max = rankComp[c]
		}
	}
	return rk
}

// Strata groups nodes by rank, -∞ first, then ascending finite ranks.
// The returned slice of slices is ordered for bottom-up processing.
func (r *Ranks) Strata() [][]graph.Node {
	byRank := make(map[int32][]graph.Node)
	for v, rv := range r.Of {
		byRank[rv] = append(byRank[rv], graph.Node(v))
	}
	keys := make([]int32, 0, len(byRank))
	for k := range byRank {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		// RankNegInf is math.MinInt32, so plain ordering puts -∞ first.
		return keys[i] < keys[j]
	})
	out := make([][]graph.Node, 0, len(keys))
	for _, k := range keys {
		out = append(out, byRank[k])
	}
	return out
}

// RefineStratified computes the maximum bisimulation with the
// rank-stratified strategy of Dovier, Piazza and Policriti [8]: process
// strata bottom-up; within each stratum run signature refinement until
// stable, treating the (already final) blocks of lower strata as fixed.
// Nodes of different ranks are never bisimilar (Lemma 9(1)), so the result
// equals the global maximum bisimulation. This engine is the basis of the
// incremental algorithm incPCM.
func RefineStratified(g *graph.Graph) *Partition {
	rk := ComputeRanks(g)
	n := g.NumNodes()
	blockOf := make([]int32, n)
	for i := range blockOf {
		blockOf[i] = -1
	}
	next := int32(0)
	for _, stratum := range rk.Strata() {
		next = refineStratum(g, stratum, blockOf, next)
	}
	return newPartition(blockOf)
}

// refineStratum assigns final block ids to the nodes of one stratum, given
// final blocks for all lower strata (blockOf == -1 means "this stratum,
// not yet assigned"). Returns the next free block id. Signatures include
// same-stratum successor blocks, so the loop iterates to a fixpoint to
// handle intra-stratum cycles (NWF nodes).
func refineStratum(g *graph.Graph, stratum []graph.Node, blockOf []int32, next int32) int32 {
	// Seed: group by label.
	cur := make(map[graph.Node]int32, len(stratum))
	labelIDs := make(map[graph.Label]int32)
	var seed int32
	for _, v := range stratum {
		l := g.Label(v)
		id, ok := labelIDs[l]
		if !ok {
			id = seed
			seed++
			labelIDs[l] = id
		}
		cur[v] = id
	}
	numBlocks := seed

	scratch := make([]int64, 0, 16)
	for {
		ids := make(map[string]int32)
		nxt := make(map[graph.Node]int32, len(stratum))
		var count int32
		for _, v := range stratum {
			scratch = scratch[:0]
			for _, w := range g.Successors(v) {
				if b := blockOf[w]; b >= 0 {
					// Finalized lower-stratum block: tag with high bit clear.
					scratch = append(scratch, int64(b))
				} else {
					// Same-stratum successor: use its current local id,
					// tagged to avoid colliding with global ids.
					scratch = append(scratch, int64(cur[w])|int64(1)<<40)
				}
			}
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			buf := make([]byte, 0, 8+8*len(scratch))
			buf = appendInt64(buf, int64(cur[v]))
			prev := int64(-1)
			for _, s := range scratch {
				if s != prev {
					buf = appendInt64(buf, s)
					prev = s
				}
			}
			key := string(buf)
			id, ok := ids[key]
			if !ok {
				id = count
				count++
				ids[key] = id
			}
			nxt[v] = id
		}
		stable := count == numBlocks
		cur = nxt
		numBlocks = count
		if stable {
			break
		}
	}

	// Materialize final ids.
	local := make(map[int32]int32)
	for _, v := range stratum {
		id, ok := local[cur[v]]
		if !ok {
			id = next
			next++
			local[cur[v]] = id
		}
		blockOf[v] = id
	}
	return next
}

func appendInt64(buf []byte, v int64) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
