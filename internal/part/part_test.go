package part

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bisim"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/reach"
)

func randomGraphs(seed int64) map[string]*graph.Graph {
	rng := func(d int64) *rand.Rand { return rand.New(rand.NewSource(seed + d)) }
	return map[string]*graph.Graph{
		"social":   gen.Social(rng(0), 150, 600, 4),
		"citation": gen.Citation(rng(1), 120, 400, 4),
		"er":       gen.ErdosRenyi(rng(2), 100, 350, 4),
	}
}

// TestSplitInvariants checks the partitioner's structural contract: dense
// local ids per shard, SCCs never straddling shards, and cross adjacency
// exactly complementing the local subgraphs.
func TestSplitInvariants(t *testing.T) {
	for name, g := range randomGraphs(1) {
		c := g.Freeze()
		for _, k := range []int{1, 2, 5} {
			p := Split(c, k)
			n := c.NumNodes()
			// Dense local ids matching the member lists.
			for s := 0; s < k; s++ {
				for i, v := range p.Nodes[s] {
					if p.ShardOf[v] != int32(s) || p.LocalID[v] != int32(i) {
						t.Fatalf("%s k=%d: node %d shard/local mismatch", name, k, v)
					}
				}
			}
			// SCC-awareness: strongly connected nodes share a shard.
			scc := graph.TarjanCSR(c)
			for v := 0; v < n; v++ {
				rep := scc.Members[scc.Comp[v]][0]
				if p.ShardOf[v] != p.ShardOf[rep] {
					t.Fatalf("%s k=%d: SCC of %d straddles shards", name, k, v)
				}
			}
			// Edge partition: every edge is either in exactly one local
			// subgraph or in the cross adjacency.
			locals := make([]*graph.Graph, k)
			totalLocal := 0
			for s := 0; s < k; s++ {
				locals[s] = p.Subgraph(c, s)
				if err := locals[s].Validate(); err != nil {
					t.Fatalf("%s k=%d: shard %d invalid: %v", name, k, s, err)
				}
				totalLocal += locals[s].NumEdges()
			}
			if totalLocal+p.CrossEdges != c.NumEdges() {
				t.Fatalf("%s k=%d: %d local + %d cross != %d edges",
					name, k, totalLocal, p.CrossEdges, c.NumEdges())
			}
			c.Edges(func(u, v graph.Node) bool {
				if p.ShardOf[u] == p.ShardOf[v] {
					if !locals[p.ShardOf[u]].HasEdge(p.LocalID[u], p.LocalID[v]) {
						t.Fatalf("%s k=%d: local edge (%d,%d) missing", name, k, u, v)
					}
				} else {
					found := false
					for _, w := range p.CrossOut[u] {
						if w == v {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s k=%d: cross edge (%d,%d) missing", name, k, u, v)
					}
				}
				return true
			})
			// Labels survive extraction.
			for s := 0; s < k; s++ {
				for i, v := range p.Nodes[s] {
					if locals[s].Label(graph.Node(i)) != c.Label(v) {
						t.Fatalf("%s k=%d: label mismatch at %d", name, k, v)
					}
				}
			}
		}
	}
}

// TestSubsetClosure pins reach.SubsetClosure against brute-force BFS over
// the original graph for a random node subset.
func TestSubsetClosure(t *testing.T) {
	for name, g := range randomGraphs(2) {
		rc := reach.Compress(g)
		gr := rc.Gr.Freeze()
		gcsr := g.Freeze()
		rng := rand.New(rand.NewSource(3))
		var subset []graph.Node
		for v := 0; v < g.NumNodes(); v++ {
			if rng.Intn(4) == 0 {
				subset = append(subset, graph.Node(v))
			}
		}
		got := make(map[[2]int32]bool)
		for _, pr := range rc.SubsetClosure(gr, subset) {
			got[pr] = true
		}
		sc := queries.NewScratch(0)
		for i, u := range subset {
			for j, v := range subset {
				if i == j {
					continue
				}
				want := queries.ReachableBiCSR(gcsr, sc, u, v)
				if got[[2]int32{int32(i), int32(j)}] != want {
					t.Fatalf("%s: SubsetClosure(%d→%d)=%v want %v",
						name, u, v, !want, want)
				}
			}
		}
	}
}

// TestStitchedIsBisimulation verifies the stitched partition is a stable
// label-respecting partition of the full graph — the property that makes
// cross-shard Match exact — and that matching on the stitched quotient
// plus expansion equals matching on G directly.
func TestStitchedIsBisimulation(t *testing.T) {
	for name, g := range randomGraphs(4) {
		c := g.Freeze()
		for _, k := range []int{2, 4} {
			p := Split(c, k)
			locals := make([]*graph.CSR, k)
			parts := make([]*bisim.Partition, k)
			for s := 0; s < k; s++ {
				local := p.Subgraph(c, s)
				locals[s] = local.Freeze()
				parts[s] = bisim.RefinePTCSR(locals[s])
			}
			st := BuildStitched(p, locals, parts, p.CrossOut, c.Labels())

			// Stability on the full graph.
			blockOf := make([]int32, c.NumNodes())
			for v, b := range st.BlockOf {
				blockOf[v] = int32(b)
			}
			full := &bisim.Partition{BlockOf: blockOf, Blocks: st.Members}
			if !bisim.IsStable(g, full) {
				t.Fatalf("%s k=%d: stitched partition not stable on G", name, k)
			}
			// Blocks never span shards.
			for b, mem := range st.Members {
				for _, v := range mem {
					if p.ShardOf[v] != st.ShardOfBlock[b] {
						t.Fatalf("%s k=%d: block %d spans shards", name, k, b)
					}
				}
			}

			// Match on the stitched quotient + expansion == Match on G.
			pt := pattern.New()
			pa := pt.AddNode("L0")
			pb := pt.AddNode("L1")
			pt.AddEdge(pa, pb, 2)
			want := pattern.Match(g, pt)
			onQ := pattern.MatchCSR(st.Q, pt)
			var got *pattern.Result
			if !onQ.OK {
				got = onQ
			} else {
				got = &pattern.Result{OK: true, Sets: make([][]graph.Node, len(onQ.Sets))}
				for u, classes := range onQ.Sets {
					var set []graph.Node
					for _, cls := range classes {
						set = append(set, st.Members[cls]...)
					}
					sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
					got.Sets[u] = set
				}
			}
			if want.OK != got.OK || want.Size() != got.Size() {
				t.Fatalf("%s k=%d: stitched match %v/%d want %v/%d",
					name, k, got.OK, got.Size(), want.OK, want.Size())
			}
		}
	}
}

// buildTestSummary assembles a summary for a split graph, compressing each
// shard's subgraph on the spot.
func buildTestSummary(c *graph.CSR, p *Partition) (*Summary, []*reach.Compressed, []*graph.CSR) {
	boundary := BoundaryNodes(p.CrossOut, p.CrossInDeg)
	shardBoundary := make([][]graph.Node, p.K)
	for _, v := range boundary {
		s := p.ShardOf[v]
		shardBoundary[s] = append(shardBoundary[s], v)
	}
	rcs := make([]*reach.Compressed, p.K)
	grs := make([]*graph.CSR, p.K)
	for s := 0; s < p.K; s++ {
		rcs[s] = reach.Compress(p.Subgraph(c, s))
		grs[s] = rcs[s].Gr.Freeze()
	}
	return BuildSummary(boundary, p.CrossOut, shardBoundary, p.LocalID, rcs, grs), rcs, grs
}

// TestSummarySumID checks the boundary list, the id lookup round-trip and
// the linear size of the class-augmented summary.
func TestSummarySumID(t *testing.T) {
	g := gen.Social(rand.New(rand.NewSource(5)), 120, 500, 4)
	c := g.Freeze()
	p := Split(c, 3)
	s, rcs, grs := buildTestSummary(c, p)
	boundary := s.Boundary
	if len(boundary) != len(BoundaryNodes(p.CrossOut, p.CrossInDeg)) {
		t.Fatalf("boundary length mismatch")
	}
	inB := make(map[graph.Node]bool)
	for i, v := range boundary {
		if s.SumID(v) != int32(i) {
			t.Fatalf("SumID(%d)=%d want %d", v, s.SumID(v), i)
		}
		inB[v] = true
	}
	for v := 0; v < c.NumNodes(); v++ {
		if !inB[graph.Node(v)] && s.SumID(graph.Node(v)) != -1 {
			t.Fatalf("SumID(%d) should be -1", v)
		}
	}
	// Node count: boundary plus one class node per shard quotient node.
	wantNodes := len(boundary)
	classEdges := 0
	for _, gr := range grs {
		wantNodes += gr.NumNodes()
		classEdges += gr.NumEdges()
	}
	if s.S.NumNodes() != wantNodes {
		t.Fatalf("summary nodes %d want %d", s.S.NumNodes(), wantNodes)
	}
	// Linear size: cross edges + quotient edges + per boundary node its
	// class's out-degree (type-3 hookups) + one exit edge (type 4).
	maxEdges := p.CrossEdges + classEdges + len(boundary)
	for _, v := range boundary {
		sh := p.ShardOf[v]
		cls := rcs[sh].ClassOf(p.LocalID[v])
		maxEdges += grs[sh].OutDegree(cls)
	}
	if got := s.S.NumEdges(); got > maxEdges {
		t.Fatalf("summary edges %d exceed the linear bound %d", got, maxEdges)
	}
	if s.S.NumEdges() == 0 && p.CrossEdges > 0 {
		t.Fatal("summary unexpectedly empty")
	}
}

// TestSummaryEncodesLocalReachability pins the class-augmented summary's
// core property: for boundary nodes b1 != b2 in the SAME shard, a nonempty
// summary path b1 ->+ b2 that stays on class nodes exists iff b1 locally
// reaches b2. With zero cross contribution to the check, this isolates the
// closure encoding.
func TestSummaryEncodesLocalReachability(t *testing.T) {
	g := gen.Citation(rand.New(rand.NewSource(6)), 120, 400, 4)
	c := g.Freeze()
	p := Split(c, 3)
	s, _, _ := buildTestSummary(c, p)
	sc := queries.NewScratch(0)
	ref := queries.NewScratch(0)
	for s1 := 0; s1 < p.K; s1++ {
		local := p.Subgraph(c, s1).Freeze()
		for _, b1 := range s.Boundary {
			if p.ShardOf[b1] != int32(s1) {
				continue
			}
			for _, b2 := range s.Boundary {
				if p.ShardOf[b2] != int32(s1) || b1 == b2 {
					continue
				}
				want := queries.ReachableBiCSR(local, ref, p.LocalID[b1], p.LocalID[b2])
				// The summary may also find a crossing path; only assert
				// the local direction (want=true must imply summary path).
				got := queries.ReachableBiCSR(s.S, sc, s.SumID(b1), s.SumID(b2))
				if want && !got {
					t.Fatalf("local path %d->%d missing from summary", b1, b2)
				}
			}
		}
	}
}
