package part

import (
	"slices"
	"sort"

	"repro/internal/bisim"
	"repro/internal/graph"
)

// Stitched is the cross-shard pattern-preserving quotient of one epoch: a
// bisimulation partition of the full graph assembled from the per-shard
// partitions, its quotient graph, and the indexes needed to expand a match
// on the quotient back to G per shard. Immutable after construction.
//
// The construction starts from the disjoint union of the shards' local
// maximum-bisimulation partitions (each stable for its shard subgraph) and
// refines it against the full edge set — local edges plus cross-shard
// edges — to stability. A stable partition refining the label partition is
// a bisimulation of G, so pattern queries evaluated on the quotient and
// expanded through Members are exactly the answers on G (the paper's
// Theorem 4 argument applies to any bisimulation, not only the coarsest).
// Blocks never span shards, so the result is finer than the global maximum
// bisimulation — the compression ratio the sharded store trades for
// partition-parallel maintenance — and every block expands within a single
// shard, which is what lets Match fan out per shard.
type Stitched struct {
	// Q is the frozen quotient graph over stitched block ids.
	Q *graph.CSR
	// BlockOf maps every global node to its block (the rewriting R).
	BlockOf []graph.Node
	// Members lists, per block, the member global node ids ascending (the
	// post-processing index P).
	Members [][]graph.Node
	// ShardOfBlock gives the single shard every block's members live in.
	ShardOfBlock []int32
}

// NumBlocks returns the number of stitched classes.
func (st *Stitched) NumBlocks() int { return len(st.Members) }

// BuildStitched assembles the stitched quotient for one epoch. locals are
// the shards' frozen local subgraph snapshots, parts the shards' current
// bisimulation partitions (over local ids), crossOut the epoch's
// cross-shard adjacency, and labels the shared label table.
func BuildStitched(p *Partition, locals []*graph.CSR, parts []*bisim.Partition, crossOut [][]graph.Node, labels *graph.Labels) *Stitched {
	n := len(p.ShardOf)

	// Disjoint union of the per-shard partitions, in global id space.
	blockOf := make([]int32, n)
	var members [][]graph.Node
	shardOfBlock := make([]int32, 0, 64)
	for s := 0; s < p.K; s++ {
		off := int32(len(members))
		for _, blk := range parts[s].Blocks {
			glob := make([]graph.Node, len(blk))
			for i, lv := range blk {
				glob[i] = p.Nodes[s][lv] // local lists ascend, so glob does too
			}
			members = append(members, glob)
			shardOfBlock = append(shardOfBlock, int32(s))
		}
		for lv, b := range parts[s].BlockOf {
			blockOf[p.Nodes[s][lv]] = off + b
		}
	}

	// Reverse cross adjacency, needed to propagate splits to predecessors.
	crossIn := make([][]graph.Node, n)
	for v := range crossOut {
		for _, w := range crossOut[v] {
			crossIn[w] = append(crossIn[w], graph.Node(v))
		}
	}

	// succBlocks collects the sorted distinct successor-block signature of
	// a global node over the full edge set.
	sigBuf := make([]int32, 0, 16)
	succBlocks := func(v graph.Node) []int32 {
		sigBuf = sigBuf[:0]
		s := p.ShardOf[v]
		lv := p.LocalID[v]
		for _, lw := range locals[s].Successors(lv) {
			sigBuf = append(sigBuf, blockOf[p.Nodes[s][lw]])
		}
		for _, w := range crossOut[v] {
			sigBuf = append(sigBuf, blockOf[w])
		}
		slices.Sort(sigBuf)
		out := sigBuf[:0]
		prev := int32(-1)
		for _, b := range sigBuf {
			if b != prev {
				out = append(out, b)
				prev = b
			}
		}
		return out
	}

	// Worklist refinement. Only blocks containing a node with cross-shard
	// out-edges can be unstable initially (the local partitions are stable
	// for the local edge sets); afterwards a block needs rechecking exactly
	// when a successor of one of its members changed block.
	inQueue := make([]bool, len(members), 2*len(members))
	var queue []int32
	push := func(b int32) {
		if !inQueue[b] {
			inQueue[b] = true
			queue = append(queue, b)
		}
	}
	for v := 0; v < n; v++ {
		if len(crossOut[v]) > 0 {
			push(blockOf[v])
		}
	}
	var keyBuf []byte
	key := func(sig []int32) string {
		keyBuf = keyBuf[:0]
		for _, b := range sig {
			keyBuf = append(keyBuf, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
		}
		return string(keyBuf)
	}
	for len(queue) > 0 {
		b := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[b] = false
		mem := members[b]
		if len(mem) <= 1 {
			continue
		}
		groups := make(map[string]int32) // signature -> group index
		var grouped [][]graph.Node
		for _, v := range mem {
			k := key(succBlocks(v))
			gi, ok := groups[k]
			if !ok {
				gi = int32(len(grouped))
				groups[k] = gi
				grouped = append(grouped, nil)
			}
			grouped[gi] = append(grouped[gi], v)
		}
		if len(grouped) == 1 {
			continue
		}
		// Split: the first group keeps id b, the rest get fresh ids. Member
		// order within groups follows the (sorted) block order, so group
		// member lists stay sorted.
		members[b] = grouped[0]
		var moved []graph.Node
		for gi := 1; gi < len(grouped); gi++ {
			nb := int32(len(members))
			members = append(members, grouped[gi])
			shardOfBlock = append(shardOfBlock, shardOfBlock[b])
			inQueue = append(inQueue, false)
			for _, v := range grouped[gi] {
				blockOf[v] = nb
			}
			moved = append(moved, grouped[gi]...)
		}
		// Predecessors of moved nodes may have lost stability.
		for _, v := range moved {
			s := p.ShardOf[v]
			lv := p.LocalID[v]
			for _, lu := range locals[s].Predecessors(lv) {
				push(blockOf[p.Nodes[s][lu]])
			}
			for _, u := range crossIn[v] {
				push(blockOf[u])
			}
		}
	}

	// Canonical renumbering by smallest member, so structurally equal
	// stitched partitions compare equal across epochs and test runs.
	numBlocks := len(members)
	order := make([]int32, numBlocks)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return members[order[i]][0] < members[order[j]][0]
	})
	canon := make([]int32, numBlocks)
	finalMembers := make([][]graph.Node, numBlocks)
	finalShard := make([]int32, numBlocks)
	for newID, old := range order {
		canon[old] = int32(newID)
		finalMembers[newID] = members[old]
		finalShard[newID] = shardOfBlock[old]
	}
	finalBlockOf := make([]graph.Node, n)
	for v := 0; v < n; v++ {
		finalBlockOf[v] = canon[blockOf[v]]
	}

	return &Stitched{
		Q:            buildStitchedQuotient(p, locals, crossOut, labels, finalBlockOf, finalMembers),
		BlockOf:      finalBlockOf,
		Members:      finalMembers,
		ShardOfBlock: finalShard,
	}
}

// buildStitchedQuotient projects every edge of G (local and cross) to block
// pairs and assembles the quotient graph in bulk.
func buildStitchedQuotient(p *Partition, locals []*graph.CSR, crossOut [][]graph.Node, labels *graph.Labels, blockOf []graph.Node, members [][]graph.Node) *graph.CSR {
	numBlocks := len(members)
	var pairs []uint64
	for s := 0; s < p.K; s++ {
		nodes := p.Nodes[s]
		locals[s].Edges(func(lu, lv graph.Node) bool {
			a, b := blockOf[nodes[lu]], blockOf[nodes[lv]]
			pairs = append(pairs, uint64(uint32(a))<<32|uint64(uint32(b)))
			return true
		})
	}
	for v := range crossOut {
		a := blockOf[v]
		for _, w := range crossOut[v] {
			pairs = append(pairs, uint64(uint32(a))<<32|uint64(uint32(blockOf[w])))
		}
	}
	slices.Sort(pairs)
	pairs = slices.Compact(pairs)

	outDeg := make([]int32, numBlocks)
	for _, pr := range pairs {
		outDeg[pr>>32]++
	}
	flat := make([]graph.Node, len(pairs))
	rows := make([][]graph.Node, numBlocks)
	labelArr := make([]graph.Label, numBlocks)
	off := int32(0)
	for b := 0; b < numBlocks; b++ {
		rows[b] = flat[off : off : off+outDeg[b]]
		off += outDeg[b]
		labelArr[b] = p.Label[members[b][0]]
	}
	for _, pr := range pairs {
		rows[pr>>32] = append(rows[pr>>32], graph.Node(uint32(pr)))
	}
	return graph.BuildFromSortedAdj(labels, labelArr, rows).Freeze()
}
