package part

import (
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/reach"
)

// summaryLabel is the fixed label of summary nodes; like reachability
// compression, the summary serves only reachability, so labels carry no
// information.
const summaryLabel = "β"

// Summary is the frozen boundary summary of one epoch. Its node set is the
// boundary nodes of G followed by a copy of every shard's reachability
// quotient ("class nodes"); its edges are
//
//  1. every cross-shard edge of G (boundary node -> boundary node),
//  2. every local quotient edge, per shard (class -> class),
//  3. b -> c for every quotient edge class(b) -> c (a boundary node can
//     continue into anything its class reaches), and
//  4. class(b) -> b for every boundary node b (a traversal arriving at a
//     class may exit at any boundary member).
//
// For boundary nodes b1, b2 this encodes local reachability exactly —
// b1 has a nonempty summary path to b2 through class nodes iff
// QR(class(b1), class(b2)) holds on their shard's quotient, i.e. iff b1
// locally reaches b2 — while staying linear in Σ|Gr_s| + |B| + cut size,
// where a materialized boundary-to-boundary closure is worst-case
// quadratic in |B|. Combined with the verbatim cross edges, a nonempty
// summary path b1 ->+ b2 exists iff b1 reaches b2 in G by a path crossing
// shards (or locally, which routers check first anyway). Immutable after
// construction; safe for any number of concurrent readers.
type Summary struct {
	// Boundary lists the boundary nodes by ascending global id; the
	// summary id of Boundary[i] is i. Class nodes occupy ids >= len(Boundary).
	Boundary []graph.Node
	// S is the summary graph over summary ids.
	S *graph.CSR
}

// SumID returns the summary id of global node v, or -1 when v is not a
// boundary node. O(log |Boundary|).
func (s *Summary) SumID(v graph.Node) int32 {
	i := sort.Search(len(s.Boundary), func(i int) bool { return s.Boundary[i] >= v })
	if i < len(s.Boundary) && s.Boundary[i] == v {
		return int32(i)
	}
	return -1
}

// NumBoundary returns the number of boundary nodes.
func (s *Summary) NumBoundary() int { return len(s.Boundary) }

// BoundaryNodes derives the sorted boundary node list from the cross-shard
// adjacency: nodes with at least one cross-shard edge in either direction.
func BoundaryNodes(crossOut [][]graph.Node, crossInDeg []int32) []graph.Node {
	var out []graph.Node
	for v := range crossOut {
		if len(crossOut[v]) > 0 || crossInDeg[v] > 0 {
			out = append(out, graph.Node(v))
		}
	}
	return out
}

// BuildSummary assembles the frozen class-augmented summary. boundary is
// the global boundary list, crossOut the epoch's cross-shard adjacency,
// and, per shard, shardBoundary lists the shard's boundary nodes (global
// ids), rcs the shard's reachability compression and grs the frozen CSR of
// its quotient; localID maps global to shard-local ids.
func BuildSummary(boundary []graph.Node, crossOut [][]graph.Node, shardBoundary [][]graph.Node, localID []int32, rcs []*reach.Compressed, grs []*graph.CSR) *Summary {
	s := &Summary{Boundary: boundary}
	nb := len(boundary)
	k := len(grs)
	// Class-node id layout: shard s's class c lives at classOff[s] + c.
	classOff := make([]int32, k+1)
	classOff[0] = int32(nb)
	for i := 0; i < k; i++ {
		classOff[i+1] = classOff[i] + int32(grs[i].NumNodes())
	}
	total := int(classOff[k])

	// Dense global->summary map for the build only (queries use SumID's
	// binary search and never pay this allocation).
	sumOf := make(map[graph.Node]int32, nb)
	for i, v := range boundary {
		sumOf[v] = int32(i)
	}

	var pairs []uint64
	add := func(a, b int32) {
		pairs = append(pairs, uint64(uint32(a))<<32|uint64(uint32(b)))
	}
	// 1. Cross-shard edges, node level.
	for _, v := range boundary {
		sv := sumOf[v]
		for _, w := range crossOut[v] {
			add(sv, sumOf[w])
		}
	}
	for i := 0; i < k; i++ {
		off := classOff[i]
		// 2. Local quotient edges.
		grs[i].Edges(func(a, b graph.Node) bool {
			add(off+a, off+b)
			return true
		})
		// 3. and 4. Boundary hookups through their classes.
		for _, g := range shardBoundary[i] {
			b := sumOf[g]
			cls := rcs[i].ClassOf(localID[g])
			for _, c := range grs[i].Successors(cls) {
				add(b, off+c)
			}
			add(off+cls, b)
		}
	}
	slices.Sort(pairs)
	pairs = slices.Compact(pairs)

	labels := graph.NewLabels()
	beta := labels.Intern(summaryLabel)
	labelArr := make([]graph.Label, total)
	for i := range labelArr {
		labelArr[i] = beta
	}
	outDeg := make([]int32, total)
	for _, pr := range pairs {
		outDeg[pr>>32]++
	}
	flat := make([]graph.Node, len(pairs))
	rows := make([][]graph.Node, total)
	off := int32(0)
	for b := 0; b < total; b++ {
		rows[b] = flat[off : off : off+outDeg[b]]
		off += outDeg[b]
	}
	for _, pr := range pairs {
		rows[pr>>32] = append(rows[pr>>32], graph.Node(uint32(pr)))
	}
	s.S = graph.BuildFromSortedAdj(labels, labelArr, rows).Freeze()
	return s
}
