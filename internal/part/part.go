// Package part partitions a labeled directed graph into k shards for the
// sharded store: an SCC-aware edge-cut partitioner, per-shard subgraph
// views, a frozen boundary summary graph for cross-shard reachability, and
// a stitched global bisimulation quotient for cross-shard pattern queries.
//
// # Partitioning (SCC-aware label/ID hashing)
//
// Split assigns every strongly connected component of G to one shard by
// hashing the id and label of its smallest member node, so all nodes of a
// cycle land in the same shard (a cycle cut across shards would force every
// local reachability structure to consult the summary even for the hot
// same-shard case). Nodes inherit their component's shard. The mapping is
// deterministic for a given graph and k, and it is static: batch updates
// change edges but never the node-to-shard assignment, so an update touches
// only the structures of the one or two shards it names, matching the
// locality argument of incremental view maintenance under updates.
//
// # Boundary summary
//
// A node is a boundary node when it has at least one cross-shard edge in
// either direction. The summary graph has one node per boundary node and
// two kinds of edges: every cross-shard edge of G, and a closure edge
// (b1,b2) whenever b2 is locally reachable from b1 inside their common
// shard (computed over the shard's reachability-compressed quotient, not
// over the shard subgraph). Any path of G decomposes into maximal
// same-shard segments joined by cross-shard edges; each inner segment runs
// between boundary nodes, so it is represented by a closure edge, and the
// cross-shard edges are present verbatim. Hence for boundary nodes b1, b2:
//
//	b1 reaches b2 in G by a path crossing shards  ⇔  b1 reaches b2 in the summary
//
// and a cross-shard query QR(u,v) becomes local-lookup → summary-hop →
// local-lookup: collect the boundary nodes u reaches locally, the boundary
// nodes that reach v locally, and ask the summary whether the first set
// reaches the second. Fully local paths are answered by the shard's own
// compressed quotient first.
package part

import (
	"repro/internal/graph"
)

// Partition is the immutable node-to-shard mapping plus the initial
// cross-shard adjacency extracted at split time. The mapping fields (K,
// ShardOf, LocalID, Nodes, Label) never change after Split and are safe to
// share between epochs and goroutines; ownership of the cross-adjacency
// fields (CrossOut, CrossInDeg) passes to the caller, which evolves them
// under updates.
type Partition struct {
	// K is the shard count.
	K int
	// ShardOf maps every global node to its shard.
	ShardOf []int32
	// LocalID maps every global node to its dense local id within its
	// shard (its index in Nodes[ShardOf[v]]).
	LocalID []int32
	// Nodes lists, per shard, the member global ids in ascending order.
	Nodes [][]graph.Node
	// Label is the (static) label of every global node; node labels do not
	// change under edge updates, so this is shared by all epochs.
	Label []graph.Label
	// CrossOut holds, per global node, the sorted cross-shard successors
	// (nil for nodes with none). Rows are initially fresh slices.
	CrossOut [][]graph.Node
	// CrossInDeg counts, per global node, its cross-shard in-edges.
	CrossInDeg []int32
	// CrossEdges is the total number of cross-shard edges.
	CrossEdges int
}

// fnv1a mixes a node id and its label into a shard key.
func fnv1a(id graph.Node, label graph.Label) uint64 {
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	h := offset
	for _, b := range [8]byte{
		byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24),
		byte(label), byte(label >> 8), byte(label >> 16), byte(label >> 24),
	} {
		h = (h ^ uint64(b)) * prime
	}
	return h
}

// Split partitions the snapshot c into k shards by SCC-aware label/ID
// hashing and extracts the cross-shard adjacency. k is clamped to at
// least 1; with k = 1 everything is local and the cross fields are empty.
func Split(c *graph.CSR, k int) *Partition {
	if k < 1 {
		k = 1
	}
	n := c.NumNodes()
	p := &Partition{
		K:          k,
		ShardOf:    make([]int32, n),
		LocalID:    make([]int32, n),
		Nodes:      make([][]graph.Node, k),
		Label:      make([]graph.Label, n),
		CrossOut:   make([][]graph.Node, n),
		CrossInDeg: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		p.Label[v] = c.Label(graph.Node(v))
	}
	scc := graph.TarjanCSR(c)
	shardOfComp := make([]int32, scc.NumComponents())
	for comp := range shardOfComp {
		rep := scc.Members[comp][0] // members are sorted: the smallest id
		shardOfComp[comp] = int32(fnv1a(rep, c.Label(rep)) % uint64(k))
	}
	for v := 0; v < n; v++ {
		s := shardOfComp[scc.Comp[v]]
		p.ShardOf[v] = s
		p.LocalID[v] = int32(len(p.Nodes[s]))
		p.Nodes[s] = append(p.Nodes[s], graph.Node(v))
	}
	// Cross-shard adjacency: CSR successor rows are sorted, so the filtered
	// rows come out sorted too.
	for v := 0; v < n; v++ {
		sv := p.ShardOf[v]
		for _, w := range c.Successors(graph.Node(v)) {
			if p.ShardOf[w] != sv {
				p.CrossOut[v] = append(p.CrossOut[v], w)
				p.CrossInDeg[w]++
				p.CrossEdges++
			}
		}
	}
	return p
}

// Subgraph extracts shard s's induced local subgraph (local ids, shared
// label table, intra-shard edges only) from the snapshot c.
func (p *Partition) Subgraph(c *graph.CSR, s int) *graph.Graph {
	return graph.ExtractGroup(c, p.ShardOf, int32(s), p.Nodes[s], p.LocalID)
}

// Global maps a shard-local id back to its global node id.
func (p *Partition) Global(shard int, local graph.Node) graph.Node {
	return p.Nodes[shard][local]
}
