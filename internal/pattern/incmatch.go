package pattern

import (
	"repro/internal/graph"
)

// IncMatcher maintains the maximum match of one pattern over an evolving
// graph — the IncBMatch baseline of the paper's Fig. 12(h) experiment
// (comparing incremental matching on G against incPCM + Match on Gr).
//
// Maintenance strategy (see DESIGN.md "Substitutions"):
//
//   - Deletion-only batches are handled incrementally: the new maximum
//     match is a subset of the old one (removing edges only removes
//     paths), and the refinement operator is deflationary, so running the
//     fixpoint from the previous match converges exactly to the new
//     maximum match while touching only pairs that actually change.
//   - Batches containing insertions fall back to re-evaluation, because
//     the maximum match may grow and a greatest fixpoint cannot be safely
//     approached from below.
type IncMatcher struct {
	g    *graph.Graph
	p    *Pattern
	sim  [][]bool
	size []int
	ok   bool
}

// NewIncMatcher evaluates p on g and returns a maintainer. The matcher
// owns g: all subsequent updates must be applied through Apply.
func NewIncMatcher(g *graph.Graph, p *Pattern) *IncMatcher {
	m := &IncMatcher{g: g, p: p}
	m.rematch()
	return m
}

// Result returns the current maximum match.
func (m *IncMatcher) Result() *Result {
	if !m.ok {
		return &Result{OK: false}
	}
	return resultFromSim(m.sim, m.size)
}

// Graph returns the maintained graph.
func (m *IncMatcher) Graph() *graph.Graph { return m.g }

// Apply applies the batch to the graph and brings the match up to date.
func (m *IncMatcher) Apply(batch []graph.Update) {
	insertions := false
	changedAny := false
	for _, u := range batch {
		if u.Insert {
			if m.g.AddEdge(u.From, u.To) {
				insertions = true
				changedAny = true
			}
		} else {
			if m.g.RemoveEdge(u.From, u.To) {
				changedAny = true
			}
		}
	}
	if !changedAny {
		return
	}
	if insertions {
		// Growth is possible: re-evaluate.
		m.rematch()
		return
	}
	if !m.ok {
		// There was no match and deletions cannot create one.
		return
	}
	// Deletions only: refine the previous match downward. The O(|V|+|E|)
	// re-freeze is dwarfed by even one ReverseWithin pass of the fixpoint.
	m.ok = refineToFixpoint(m.g.Freeze(), m.p, m.sim, m.size)
}

func (m *IncMatcher) rematch() {
	np := m.p.NumNodes()
	n := m.g.NumNodes()
	m.sim = make([][]bool, np)
	m.size = make([]int, np)
	for u := 0; u < np; u++ {
		m.sim[u] = make([]bool, n)
		if id, ok := m.g.Labels().Lookup(m.p.labels[u]); ok {
			for v := 0; v < n; v++ {
				if m.g.Label(graph.Node(v)) == id {
					m.sim[u][v] = true
					m.size[u]++
				}
			}
		}
		if m.size[u] == 0 {
			m.ok = false
			return
		}
	}
	m.ok = refineToFixpoint(m.g.Freeze(), m.p, m.sim, m.size)
}
