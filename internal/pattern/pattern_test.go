package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bisim"
	"repro/internal/graph"
	"repro/internal/queries"
)

func labeledGraph(labels []string, edges [][2]graph.Node) *graph.Graph {
	g := graph.New(nil)
	for _, l := range labels {
		g.AddNodeNamed(l)
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func randomLabeled(rng *rand.Rand, n, m, nlabels int) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNodeNamed(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
	}
	return g
}

// randomPattern builds a small connected-ish random pattern.
func randomPattern(rng *rand.Rand, nodes, edges, nlabels, maxBound int) *Pattern {
	p := New()
	for i := 0; i < nodes; i++ {
		p.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < edges; i++ {
		u := int32(rng.Intn(nodes))
		v := int32(rng.Intn(nodes))
		bound := Unbounded
		if rng.Intn(3) > 0 {
			bound = 1 + rng.Intn(maxBound)
		}
		p.AddEdge(u, v, bound)
	}
	return p
}

// bruteMatch computes the maximum bounded-simulation match by definition:
// greatest fixpoint over pairs with explicit shortest-path checks.
func bruteMatch(g *graph.Graph, p *Pattern) *Result {
	np := p.NumNodes()
	n := g.NumNodes()
	rel := make([][]bool, np)
	for u := 0; u < np; u++ {
		rel[u] = make([]bool, n)
		for v := 0; v < n; v++ {
			rel[u][v] = g.LabelName(graph.Node(v)) == p.Label(int32(u))
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < np; u++ {
			for v := 0; v < n; v++ {
				if !rel[u][v] {
					continue
				}
				for _, e := range p.EdgesFrom(int32(u)) {
					ok := false
					for w := 0; w < n; w++ {
						if !rel[e.To][w] {
							continue
						}
						d := queries.Distance(g, graph.Node(v), graph.Node(w))
						if d != -1 && (e.Bound == Unbounded || d <= e.Bound) {
							ok = true
							break
						}
					}
					if !ok {
						rel[u][v] = false
						changed = true
						break
					}
				}
			}
		}
	}
	res := &Result{OK: true, Sets: make([][]graph.Node, np)}
	for u := 0; u < np; u++ {
		for v := 0; v < n; v++ {
			if rel[u][v] {
				res.Sets[u] = append(res.Sets[u], graph.Node(v))
			}
		}
		if len(res.Sets[u]) == 0 {
			return &Result{OK: false}
		}
	}
	return res
}

func sameResult(a, b *Result) bool {
	if a.OK != b.OK {
		return false
	}
	if !a.OK {
		return true
	}
	if len(a.Sets) != len(b.Sets) {
		return false
	}
	for u := range a.Sets {
		if len(a.Sets[u]) != len(b.Sets[u]) {
			return false
		}
		for i := range a.Sets[u] {
			if a.Sets[u][i] != b.Sets[u][i] {
				return false
			}
		}
	}
	return true
}

func TestMatchSimpleEdgePattern(t *testing.T) {
	// Pattern A -1-> B over A0->B1, A2->C3: only A0/B1 match.
	g := labeledGraph([]string{"A", "B", "A", "C"}, [][2]graph.Node{{0, 1}, {2, 3}})
	p := New()
	a := p.AddNode("A")
	b := p.AddNode("B")
	p.AddEdge(a, b, 1)
	r := Match(g, p)
	if !r.OK {
		t.Fatal("expected match")
	}
	if len(r.Sets[a]) != 1 || r.Sets[a][0] != 0 {
		t.Fatalf("A matches = %v", r.Sets[a])
	}
	if len(r.Sets[b]) != 1 || r.Sets[b][0] != 1 {
		t.Fatalf("B matches = %v", r.Sets[b])
	}
	if !r.Contains(a, 0) || r.Contains(a, 2) {
		t.Fatal("Contains wrong")
	}
	if r.Size() != 2 {
		t.Fatalf("Size = %d", r.Size())
	}
}

func TestMatchBoundSemantics(t *testing.T) {
	// Chain A0 -> X1 -> B2. Edge A->B with bound 1 fails, bound 2 and *
	// succeed.
	g := labeledGraph([]string{"A", "X", "B"}, [][2]graph.Node{{0, 1}, {1, 2}})
	for _, tc := range []struct {
		bound int
		want  bool
	}{{1, false}, {2, true}, {3, true}, {Unbounded, true}} {
		p := New()
		a := p.AddNode("A")
		b := p.AddNode("B")
		p.AddEdge(a, b, tc.bound)
		if got := Match(g, p).OK; got != tc.want {
			t.Errorf("bound %d: match = %v, want %v", tc.bound, got, tc.want)
		}
	}
}

func TestMatchNonemptyPathRequired(t *testing.T) {
	// Pattern edge A -> A needs a nonempty path between (possibly equal)
	// A nodes: a single A without edges must not match.
	g := labeledGraph([]string{"A"}, nil)
	p := New()
	a := p.AddNode("A")
	p.AddEdge(a, a, Unbounded)
	if Match(g, p).OK {
		t.Fatal("matched without a path")
	}
	g2 := labeledGraph([]string{"A"}, [][2]graph.Node{{0, 0}})
	if !Match(g2, p).OK {
		t.Fatal("self-loop should satisfy A->A")
	}
}

func TestMatchMissingLabel(t *testing.T) {
	g := labeledGraph([]string{"A"}, nil)
	p := New()
	p.AddNode("Z")
	if Match(g, p).OK {
		t.Fatal("matched a label absent from the graph")
	}
}

func TestMatchCascadingRefinement(t *testing.T) {
	// B3 loses its match because its only C successor has no D successor;
	// then A0 loses B3... pattern A-1->B-1->C-1->D.
	g := labeledGraph(
		[]string{"A", "B", "C", "D", "A", "B", "C"},
		[][2]graph.Node{
			{0, 1}, {1, 2}, {2, 3}, // good chain
			{4, 5}, {5, 6}, // bad chain: C6 has no D child
		})
	p := New()
	a := p.AddNode("A")
	b := p.AddNode("B")
	c := p.AddNode("C")
	d := p.AddNode("D")
	p.AddEdge(a, b, 1)
	p.AddEdge(b, c, 1)
	p.AddEdge(c, d, 1)
	r := Match(g, p)
	if !r.OK {
		t.Fatal("expected match")
	}
	if r.Contains(a, 4) || r.Contains(b, 5) || r.Contains(c, 6) {
		t.Fatalf("bad chain leaked into match: %v", r.Sets)
	}
	if !r.Contains(a, 0) || !r.Contains(b, 1) || !r.Contains(c, 2) || !r.Contains(d, 3) {
		t.Fatalf("good chain missing: %v", r.Sets)
	}
}

func TestMatchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(12)
		g := randomLabeled(rng, n, rng.Intn(3*n), 2)
		p := randomPattern(rng, 1+rng.Intn(4), rng.Intn(5), 2, 3)
		got := Match(g, p)
		want := bruteMatch(g, p)
		if !sameResult(got, want) {
			t.Fatalf("trial %d: Match disagrees with brute force\nedges %v\ngot %+v\nwant %+v",
				trial, g.EdgeList(), got, want)
		}
	}
}

// TestPreservationTheorem is the core correctness test of Section 4: for
// any pattern Qp, Qp(G) = P(Qp(Gr)) where Gr is the bisimulation quotient
// and P = Expand. The same Match code runs on both graphs.
func TestPreservationTheorem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randomLabeled(rng, n, rng.Intn(4*n), 3)
		c := bisim.Compress(g)
		for trial := 0; trial < 5; trial++ {
			p := randomPattern(rng, 1+rng.Intn(5), rng.Intn(7), 3, 3)
			onG := Match(g, p)
			onGr := Match(c.Gr, p)
			if onG.OK != onGr.OK {
				return false
			}
			if !sameResult(onG, Expand(onGr, c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPlainSimulationSpecialCase(t *testing.T) {
	// With all bounds 1 this is graph simulation [12]; check a known
	// asymmetry: pattern A->B matches A1 with direct B child, not A2 whose
	// B is two hops away.
	g := labeledGraph([]string{"A", "B", "A", "X", "B"},
		[][2]graph.Node{{0, 1}, {2, 3}, {3, 4}})
	p := New()
	a := p.AddNode("A")
	b := p.AddNode("B")
	p.AddEdge(a, b, 1)
	r := Match(g, p)
	if !r.Contains(a, 0) || r.Contains(a, 2) {
		t.Fatalf("simulation semantics wrong: %v", r.Sets)
	}
}

func TestAddEdgePanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bound 0")
		}
	}()
	p := New()
	a := p.AddNode("A")
	p.AddEdge(a, a, 0)
}

func TestIncMatcherDeletionsMatchRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomLabeled(rng, n, 2*n, 2)
		p := randomPattern(rng, 1+rng.Intn(4), 1+rng.Intn(4), 2, 3)
		m := NewIncMatcher(g.Clone(), p)
		// Three batches of random deletions.
		for batch := 0; batch < 3; batch++ {
			edges := g.EdgeList()
			if len(edges) == 0 {
				break
			}
			var ups []graph.Update
			for i := 0; i < 1+rng.Intn(3) && len(edges) > 0; i++ {
				e := edges[rng.Intn(len(edges))]
				ups = append(ups, graph.Deletion(e[0], e[1]))
			}
			g.Apply(ups)
			m.Apply(ups)
			if !sameResult(m.Result(), Match(g, p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIncMatcherMixedBatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := randomLabeled(rng, n, n, 2)
		p := randomPattern(rng, 1+rng.Intn(3), 1+rng.Intn(3), 2, 2)
		m := NewIncMatcher(g.Clone(), p)
		for batch := 0; batch < 4; batch++ {
			var ups []graph.Update
			for i := 0; i < 1+rng.Intn(4); i++ {
				u, v := graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n))
				if rng.Intn(2) == 0 {
					ups = append(ups, graph.Insertion(u, v))
				} else {
					ups = append(ups, graph.Deletion(u, v))
				}
			}
			g.Apply(ups)
			m.Apply(ups)
			if !sameResult(m.Result(), Match(g, p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandNoMatch(t *testing.T) {
	g := labeledGraph([]string{"A"}, nil)
	c := bisim.Compress(g)
	r := Expand(&Result{OK: false}, c)
	if r.OK || r.Size() != 0 {
		t.Fatal("Expand of no-match should be no-match")
	}
}
