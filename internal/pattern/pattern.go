// Package pattern implements graph pattern queries via (bounded) simulation
// (Section 2.1 and Section 4 of the paper):
//
//   - Pattern is Qp = (Vp, Ep, fv, fe): a directed graph of labeled query
//     nodes whose edges carry a bound k >= 1 or * (unbounded).
//   - Match computes the unique maximum match of Qp in a data graph G
//     (Lemma 1, [9]): the greatest relation S ⊆ Vp×V such that matched data
//     nodes carry the required label and every pattern edge (u,u') maps to
//     a nonempty path of length within the bound, ending in a match of u'.
//   - Bounded simulation with all bounds 1 is plain graph simulation [12].
//
// Match is an unmodified evaluation algorithm in the sense of the paper: it
// runs identically on G and on the bisimulation-compressed Gr; Expand is
// the post-processing function P that maps a result on Gr back to the
// result on G by substituting class members.
package pattern

import (
	"fmt"
	"sort"

	"repro/internal/bisim"
	"repro/internal/graph"
	"repro/internal/queries"
)

// Unbounded is the edge bound "*": the pattern edge maps to a nonempty path
// of arbitrary length.
const Unbounded = queries.Unbounded

// Edge is a pattern edge to node To with bound Bound (a positive length
// cap, or Unbounded).
type Edge struct {
	To    int32
	Bound int
}

// Pattern is a graph pattern query Qp.
type Pattern struct {
	labels []string
	adj    [][]Edge
}

// New returns an empty pattern.
func New() *Pattern { return &Pattern{} }

// AddNode appends a query node carrying the search condition fv = label and
// returns its id.
func (p *Pattern) AddNode(label string) int32 {
	p.labels = append(p.labels, label)
	p.adj = append(p.adj, nil)
	return int32(len(p.labels) - 1)
}

// AddEdge adds a pattern edge (u,u') with the given bound (k >= 1, or
// Unbounded for *). It panics on an invalid bound, matching the paper's
// definition of fe.
func (p *Pattern) AddEdge(u, v int32, bound int) {
	if bound != Unbounded && bound < 1 {
		panic(fmt.Sprintf("pattern: bound must be >= 1 or Unbounded, got %d", bound))
	}
	p.adj[u] = append(p.adj[u], Edge{To: v, Bound: bound})
}

// NumNodes returns |Vp|.
func (p *Pattern) NumNodes() int { return len(p.labels) }

// NumEdges returns |Ep|.
func (p *Pattern) NumEdges() int {
	n := 0
	for _, es := range p.adj {
		n += len(es)
	}
	return n
}

// Label returns fv(u).
func (p *Pattern) Label(u int32) string { return p.labels[u] }

// EdgesFrom returns the pattern edges leaving u.
func (p *Pattern) EdgesFrom(u int32) []Edge { return p.adj[u] }

// Result is the answer to a pattern query: the maximum match as one
// sorted node list per pattern node, or no-match.
type Result struct {
	// Sets[u] lists the data nodes matching pattern node u. Valid only
	// when OK.
	Sets [][]graph.Node
	// OK reports whether Qp matches the graph (every pattern node has at
	// least one match). When false the answer is ∅ per the paper.
	OK bool
}

// Contains reports whether (u, v) belongs to the match relation.
func (r *Result) Contains(u int32, v graph.Node) bool {
	if !r.OK {
		return false
	}
	set := r.Sets[u]
	lo, hi := 0, len(set)
	for lo < hi {
		mid := (lo + hi) / 2
		if set[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(set) && set[lo] == v
}

// Size returns the number of pairs in the match relation (0 when no match).
func (r *Result) Size() int {
	if !r.OK {
		return 0
	}
	n := 0
	for _, s := range r.Sets {
		n += len(s)
	}
	return n
}

// Match computes the unique maximum match of p in g via greatest-fixpoint
// refinement: start from the label candidates and repeatedly intersect
// sim(u) with the set of nodes having a nonempty path of length <= k to
// some current member of sim(u'), for every pattern edge (u,u',k), until
// stable. Boolean pattern queries use Match(...).OK.
func Match(g *graph.Graph, p *Pattern) *Result { return MatchCSR(g.Freeze(), p) }

// MatchCSR is Match over a frozen CSR snapshot. The Freeze is O(|V|+|E|)
// while the fixpoint is not, so Match simply freezes and delegates; callers
// evaluating many patterns against one snapshot should freeze once and call
// MatchCSR directly.
func MatchCSR(c *graph.CSR, p *Pattern) *Result {
	np := p.NumNodes()
	n := c.NumNodes()

	// Resolve label candidates. The label array scan is one pass per
	// pattern node over flat memory.
	sim := make([][]bool, np)
	size := make([]int, np)
	for u := 0; u < np; u++ {
		sim[u] = make([]bool, n)
		if id, ok := c.Labels().Lookup(p.labels[u]); ok {
			for v := 0; v < n; v++ {
				if c.Label(graph.Node(v)) == id {
					sim[u][v] = true
					size[u]++
				}
			}
		}
		if size[u] == 0 {
			return &Result{OK: false}
		}
	}

	if !refineToFixpoint(c, p, sim, size) {
		return &Result{OK: false}
	}
	return resultFromSim(sim, size)
}

// refineToFixpoint runs the greatest-fixpoint refinement in place over a
// CSR snapshot. It returns false as soon as some pattern node's candidate
// set empties. Starting sets may be any superset of the maximum match;
// refinement is deflationary and converges to the maximum match (see
// incmatch.go for why this also powers incremental deletion maintenance).
func refineToFixpoint(c *graph.CSR, p *Pattern, sim [][]bool, size []int) bool {
	n := c.NumNodes()
	for changed := true; changed; {
		changed = false
		for u := int32(0); u < int32(p.NumNodes()); u++ {
			for _, e := range p.adj[u] {
				allowed := queries.ReverseWithinCSR(c, sim[e.To], e.Bound)
				for v := 0; v < n; v++ {
					if sim[u][v] && !allowed[v] {
						sim[u][v] = false
						size[u]--
						changed = true
					}
				}
				if size[u] == 0 {
					return false
				}
			}
		}
	}
	return true
}

func resultFromSim(sim [][]bool, size []int) *Result {
	res := &Result{OK: true, Sets: make([][]graph.Node, len(sim))}
	for u := range sim {
		set := make([]graph.Node, 0, size[u])
		for v := range sim[u] {
			if sim[u][v] {
				set = append(set, graph.Node(v))
			}
		}
		res.Sets[u] = set
	}
	return res
}

// Expand is the post-processing function P of the pattern preserving
// compression <R,F,P>: given the answer of Qp on Gr it produces the answer
// on G by replacing every class node with its members. Linear in the size
// of the output (Theorem 4); for Boolean queries it is unnecessary — use
// the result's OK directly.
func Expand(r *Result, c *bisim.Compressed) *Result {
	if !r.OK {
		return &Result{OK: false}
	}
	out := &Result{OK: true, Sets: make([][]graph.Node, len(r.Sets))}
	for u, classes := range r.Sets {
		var set []graph.Node
		for _, cls := range classes {
			set = append(set, c.Members[cls]...)
		}
		sortNodes(set)
		out.Sets[u] = set
	}
	return out
}

func sortNodes(s []graph.Node) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
