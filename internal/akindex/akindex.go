// Package akindex implements the A(k)-index of Kaushik et al. [15]: an
// index graph whose nodes are the classes of k-bisimulation (bisimilarity
// truncated at depth k), one of the structures the paper compares against
// in Sections 3 and 4.
//
// The paper's argument — reproduced by this package's tests — is that such
// index graphs are NOT query preserving:
//
//   - For reachability (Section 3.1, Fig. 4): merging bisimilar nodes can
//     merge nodes with different descendant sets, so no rewriting of
//     QR(u,v) over the index graph answers all queries.
//   - For graph patterns (Section 4.1, Fig. 6): A(1) merges 1-bisimilar
//     but non-bisimilar nodes, and a pattern with two bound-1 query edges
//     distinguishes them, so the index graph returns false positives.
//
// The A(k)-index is still sound for its intended purpose — incoming path
// queries of bounded length — and this implementation provides that
// contract. Following Kaushik et al., classes are formed by BACKWARD
// k-bisimulation (predecessor-based: nodes are merged when their incoming
// paths agree up to depth k), which is what makes the paper's
// counterexamples fire: all B nodes of Fig. 6 share the incoming path A/B
// and merge, although their subtrees differ.
package akindex

import (
	"sort"

	"repro/internal/bisim"
	"repro/internal/graph"
)

// Index is an A(k)-index: the quotient of a graph under k-bisimulation.
type Index struct {
	// K is the truncation depth.
	K int
	// Gr is the index graph: one node per k-bisimulation class, labeled
	// with the class label, with an edge per witnessed member edge.
	Gr *graph.Graph
	// classOf maps data nodes to index nodes.
	classOf []graph.Node
	// Members is the inverse mapping.
	Members [][]graph.Node
}

// ClassOf returns the index node representing v.
func (x *Index) ClassOf(v graph.Node) graph.Node { return x.classOf[v] }

// NumClasses returns the number of k-bisimulation classes.
func (x *Index) NumClasses() int { return len(x.Members) }

// Partition computes the backward k-bisimulation partition of g: the
// label partition refined k times by predecessor-class signatures. It
// coarsens full backward bisimulation and coincides with it once k
// reaches the refinement fixpoint.
func Partition(g *graph.Graph, k int) *bisim.Partition {
	n := g.NumNodes()
	blockOf := make([]int32, n)
	ids := make(map[graph.Label]int32)
	var next int32
	for v := 0; v < n; v++ {
		l := g.Label(graph.Node(v))
		id, ok := ids[l]
		if !ok {
			id = next
			next++
			ids[l] = id
		}
		blockOf[v] = id
	}
	scratch := make([]int32, 0, 16)
	for round := 0; round < k; round++ {
		sigIDs := make(map[string]int32)
		nxt := make([]int32, n)
		var count int32
		for v := 0; v < n; v++ {
			scratch = scratch[:0]
			for _, w := range g.Predecessors(graph.Node(v)) {
				scratch = append(scratch, blockOf[w])
			}
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			buf := make([]byte, 0, 4+4*len(scratch))
			buf = appendInt32(buf, blockOf[v])
			prev := int32(-1)
			for _, b := range scratch {
				if b != prev {
					buf = appendInt32(buf, b)
					prev = b
				}
			}
			id, ok := sigIDs[string(buf)]
			if !ok {
				id = count
				count++
				sigIDs[string(buf)] = id
			}
			nxt[v] = id
		}
		stable := count == next
		blockOf = nxt
		next = count
		if stable {
			break // reached the full bisimulation early
		}
	}
	return partitionOf(blockOf)
}

// Build constructs the A(k)-index of g.
func Build(g *graph.Graph, k int) *Index {
	p := Partition(g, k)
	gr := graph.New(g.Labels())
	for b := 0; b < p.NumBlocks(); b++ {
		gr.AddNode(g.Label(p.Blocks[b][0]))
	}
	g.Edges(func(u, v graph.Node) bool {
		gr.AddEdge(p.BlockOf[u], p.BlockOf[v])
		return true
	})
	return &Index{K: k, Gr: gr, classOf: p.BlockOf, Members: p.Blocks}
}

// PathExists reports whether some member of the class of u could have an
// outgoing path whose i-th node carries labels[i], judged on the index
// graph. Navigation over any quotient is complete (real paths are never
// missed) but may overapproximate — the index-graph limitation the
// paper's counterexamples exploit.
func (x *Index) PathExists(u graph.Node, labels []graph.Label) bool {
	frontier := map[graph.Node]bool{x.classOf[u]: true}
	for _, want := range labels {
		next := make(map[graph.Node]bool)
		for c := range frontier {
			for _, d := range x.Gr.Successors(c) {
				if x.Gr.Label(d) == want {
					next[d] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		frontier = next
	}
	return true
}

func partitionOf(blockOf []int32) *bisim.Partition {
	n := len(blockOf)
	rawToCanon := make(map[int32]int32)
	canon := make([]int32, n)
	var next int32
	for v := 0; v < n; v++ {
		id, ok := rawToCanon[blockOf[v]]
		if !ok {
			id = next
			next++
			rawToCanon[blockOf[v]] = id
		}
		canon[v] = id
	}
	blocks := make([][]graph.Node, next)
	for v := 0; v < n; v++ {
		blocks[canon[v]] = append(blocks[canon[v]], graph.Node(v))
	}
	return &bisim.Partition{BlockOf: canon, Blocks: blocks}
}

func appendInt32(buf []byte, v int32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
