package akindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bisim"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/reach"
)

func labeledGraph(labels []string, edges [][2]graph.Node) *graph.Graph {
	g := graph.New(nil)
	for _, l := range labels {
		g.AddNodeNamed(l)
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func randomLabeled(rng *rand.Rand, n, m, nlabels int) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNodeNamed(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
	}
	return g
}

// reversed returns g with every edge flipped.
func reversed(g *graph.Graph) *graph.Graph {
	r := graph.New(g.Labels())
	for v := 0; v < g.NumNodes(); v++ {
		r.AddNode(g.Label(graph.Node(v)))
	}
	g.Edges(func(u, v graph.Node) bool {
		r.AddEdge(v, u)
		return true
	})
	return r
}

// TestAkCoarsensTowardsBisim: A(0) is the label partition; A(k) refines
// monotonically and converges to the maximum BACKWARD bisimulation (the
// forward bisimulation of the reversed graph).
func TestAkCoarsensTowardsBisim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randomLabeled(rng, n, rng.Intn(3*n), 3)
		full := bisim.RefineNaive(reversed(g))
		prev := Partition(g, 0)
		for k := 1; k <= n+1; k++ {
			cur := Partition(g, k)
			// Monotone refinement: cur refines prev.
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					if cur.BlockOf[v] == cur.BlockOf[w] && prev.BlockOf[v] != prev.BlockOf[w] {
						return false
					}
				}
			}
			prev = cur
		}
		// At k >= |V| the refinement has converged to the full bisimulation.
		return prev.Same(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperSection3Counterexample encodes the paper's Fig. 4 argument: in
// G2, C1 and C2 are bisimilar (each has an E child) and thus merged by a
// bisimulation-based index, but C2 reaches E2 while C1 does not — so no
// rewriting of QR(C1,E2) over the index graph can be correct, whereas the
// reachability preserving compression keeps them apart.
func TestPaperSection3Counterexample(t *testing.T) {
	// C1 -> E1, C2 -> E1, C2 -> E2.
	g := labeledGraph([]string{"C", "C", "E", "E"},
		[][2]graph.Node{{0, 2}, {1, 2}, {1, 3}})
	c1, c2, e2 := graph.Node(0), graph.Node(1), graph.Node(3)

	// Sanity: ground truth differs for the two C nodes.
	if queries.Reachable(g, c1, e2) || !queries.Reachable(g, c2, e2) {
		t.Fatal("ground truth wrong")
	}

	// A large-k index = full bisimulation: C1 and C2 merged.
	x := Build(g, 4)
	if x.ClassOf(c1) != x.ClassOf(c2) {
		t.Fatal("bisimilar C nodes should merge in the index graph")
	}
	// Hence the index graph cannot distinguish QR(C1,E2) from QR(C2,E2):
	// both rewrite to the same index query, but the true answers differ.
	cu := x.ClassOf(c1)
	ce := x.ClassOf(e2)
	indexAnswer := queries.Reachable(x.Gr, cu, ce)
	if indexAnswer == queries.Reachable(g, c1, e2) && indexAnswer == queries.Reachable(g, c2, e2) {
		t.Fatal("impossible: one index answer matched two different truths")
	}

	// The reachability preserving compression keeps C1 and C2 apart and
	// answers both queries correctly.
	rc := reach.Compress(g)
	if rc.ClassOf(c1) == rc.ClassOf(c2) {
		t.Fatal("reach compression must separate C1 and C2")
	}
	for _, c := range []graph.Node{c1, c2} {
		u, v := rc.Rewrite(c, e2)
		if queries.Reachable(rc.Gr, u, v) != queries.Reachable(g, c, e2) {
			t.Fatal("reach compression failed to preserve the query")
		}
	}
}

// TestPaperSection4Counterexample encodes the paper's Fig. 6 argument: in
// G1, nodes A1, A2, A3 are 1-bisimilar (all have only B children) and so
// A(1) merges them; but the pattern with query edges (B,C) and (B,D), both
// bound 1, is matched only under some of them. Evaluating on the A(1)
// index graph yields false positives, while the (full-bisimulation)
// pattern preserving compression stays exact.
func TestPaperSection4Counterexample(t *testing.T) {
	// A1 -> B1 -> {C, D}; A2 -> B2 -> C, A2 -> B3 -> D; A3 -> B4 -> C.
	g := labeledGraph(
		[]string{"A", "B", "C", "D", "A", "B", "C", "B", "D", "A", "B", "C"},
		[][2]graph.Node{
			{0, 1}, {1, 2}, {1, 3}, // A1's B has both C and D children
			{4, 5}, {5, 6}, {4, 7}, {7, 8}, // A2's Bs have one each
			{9, 10}, {10, 11}, // A3's B has only C
		})

	// The three A nodes are 1-bisimilar: merged by A(1).
	x := Build(g, 1)
	if x.ClassOf(0) != x.ClassOf(4) || x.ClassOf(4) != x.ClassOf(9) {
		t.Fatal("A nodes should be 1-bisimilar")
	}

	// Pattern: B with both a C child and a D child (bounds 1).
	p := pattern.New()
	pb := p.AddNode("B")
	pc := p.AddNode("C")
	pd := p.AddNode("D")
	p.AddEdge(pb, pc, 1)
	p.AddEdge(pb, pd, 1)

	// Ground truth: only B1 (node 1) matches.
	onG := pattern.Match(g, p)
	if !onG.OK || len(onG.Sets[pb]) != 1 || onG.Sets[pb][0] != 1 {
		t.Fatalf("ground truth: B matches = %v", onG.Sets)
	}

	// On the A(1) index graph the merged B class matches, and expanding
	// it yields every B node — false positives, exactly as the paper says.
	onIdx := pattern.Match(x.Gr, p)
	if !onIdx.OK {
		t.Fatal("index graph should (wrongly) match")
	}
	expanded := 0
	for _, cls := range onIdx.Sets[pb] {
		expanded += len(x.Members[cls])
	}
	if expanded <= 1 {
		t.Fatalf("expected false positives from A(1), got %d B matches", expanded)
	}

	// Full-bisimulation compression is exact.
	bc := bisim.Compress(g)
	exact := pattern.Expand(pattern.Match(bc.Gr, p), bc)
	if exact.Size() != onG.Size() || !exact.Contains(pb, 1) {
		t.Fatalf("pattern compression inexact: %v", exact.Sets)
	}
	if len(exact.Sets[pb]) != 1 {
		t.Fatalf("pattern compression has false positives: %v", exact.Sets[pb])
	}
}

// TestPathExistsWithinK: the index answers its design queries (label paths
// of length <= k) exactly.
func TestPathExistsWithinK(t *testing.T) {
	g := labeledGraph([]string{"A", "B", "C", "B"},
		[][2]graph.Node{{0, 1}, {1, 2}, {0, 3}})
	x := Build(g, 2)
	lb, _ := g.Labels().Lookup("B")
	lc, _ := g.Labels().Lookup("C")
	if !x.PathExists(0, []graph.Label{lb, lc}) {
		t.Fatal("A -> B -> C path missed")
	}
	if x.PathExists(2, []graph.Label{lb}) {
		t.Fatal("C has no B successor")
	}
}

// TestPathExistsComplete: index path navigation never misses a real path
// (completeness holds for any k; exactness only within k).
func TestPathExistsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomLabeled(rng, n, rng.Intn(3*n), 2)
		x := Build(g, 1+rng.Intn(3))
		// Random walks are real paths; the index must confirm them.
		for trial := 0; trial < 20; trial++ {
			v := graph.Node(rng.Intn(n))
			var labels []graph.Label
			cur := v
			for step := 0; step < 4; step++ {
				succ := g.Successors(cur)
				if len(succ) == 0 {
					break
				}
				cur = succ[rng.Intn(len(succ))]
				labels = append(labels, g.Label(cur))
			}
			if len(labels) > 0 && !x.PathExists(v, labels) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexGraphSmaller: the index graph never exceeds the original.
func TestIndexGraphSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := randomLabeled(rng, n, rng.Intn(3*n), 3)
		for _, k := range []int{0, 1, 2, 5} {
			x := Build(g, k)
			if x.Gr.NumNodes() > g.NumNodes() || x.Gr.NumEdges() > g.NumEdges() {
				t.Fatalf("k=%d index grew the graph", k)
			}
			if err := x.Gr.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestAkSmallerKCoarser: fewer refinement rounds never yield more classes.
func TestAkSmallerKCoarser(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := randomLabeled(rng, n, rng.Intn(3*n), 3)
		prev := -1
		for _, k := range []int{0, 1, 2, 4, 8} {
			nc := Build(g, k).NumClasses()
			if prev != -1 && nc < prev {
				t.Fatalf("A(%d) has fewer classes (%d) than a coarser index (%d)", k, nc, prev)
			}
			prev = nc
		}
	}
}
