package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/faultfs"
)

func open(t *testing.T, dir string, next uint64, opts *Options) *Log {
	t.Helper()
	l, err := Open(dir, next, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("payload-%d", seq))); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	err := l.Replay(from, func(seq uint64, payload []byte) error {
		got[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, 1, nil)
	appendN(t, l, 1, 40)
	if l.LastSeq() != 40 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
	got := collect(t, l, 1)
	if len(got) != 40 || got[7] != "payload-7" {
		t.Fatalf("replay got %d records, [7]=%q", len(got), got[7])
	}
	if got := collect(t, l, 30); len(got) != 11 {
		t.Fatalf("partial replay got %d records, want 11", len(got))
	}
	l.Close()

	// Reopen: tail intact, next seq continues.
	l2 := open(t, dir, 41, nil)
	defer l2.Close()
	if l2.LastSeq() != 40 {
		t.Fatalf("reopened LastSeq = %d", l2.LastSeq())
	}
	appendN(t, l2, 41, 45)
	if got := collect(t, l2, 1); len(got) != 45 {
		t.Fatalf("after reopen+append: %d records", len(got))
	}
}

func TestAppendSeqDiscipline(t *testing.T) {
	l := open(t, t.TempDir(), 1, nil)
	defer l.Close()
	appendN(t, l, 1, 3)
	if err := l.Append(5, nil); err == nil {
		t.Fatal("gap accepted")
	}
	if err := l.Append(3, nil); err == nil {
		t.Fatal("replayed seq accepted")
	}
}

func TestRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, 1, &Options{SegmentBytes: 256, Sync: SyncNone})
	appendN(t, l, 1, 100) // ~24 bytes per record -> many segments
	if l.SegmentCount() < 3 {
		t.Fatalf("expected multiple segments, got %d", l.SegmentCount())
	}
	before := l.SegmentCount()
	if err := l.TruncateBefore(50); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() >= before {
		t.Fatalf("truncation removed nothing (%d -> %d)", before, l.SegmentCount())
	}
	// Every record after the checkpoint must survive truncation.
	got := collect(t, l, 51)
	for seq := uint64(51); seq <= 100; seq++ {
		if got[seq] != fmt.Sprintf("payload-%d", seq) {
			t.Fatalf("record %d lost after truncation", seq)
		}
	}
	l.Close()

	// Reopen after truncation: replay still consistent.
	l2 := open(t, dir, 101, nil)
	defer l2.Close()
	if l2.LastSeq() != 100 {
		t.Fatalf("LastSeq after reopen = %d", l2.LastSeq())
	}
}

// TestTornTailRecovery crashes mid-write in every possible way: truncating
// the final record at each byte boundary and flipping a bit in its CRC-
// covered body. Recovery must drop exactly the torn record and keep all
// earlier ones.
func TestTornTailRecovery(t *testing.T) {
	for cut := 0; cut < 24; cut += 5 {
		dir := t.TempDir()
		l := open(t, dir, 1, nil)
		appendN(t, l, 1, 10)
		l.Close()

		segs, _ := listSegments(faultfs.Disk, dir)
		path := filepath.Join(dir, segs[len(segs)-1])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Simulate a torn write of record 11: append a partial frame.
		full := frameRecord(11, []byte("payload-11"))
		if err := os.WriteFile(path, append(data, full[:cut]...), 0o666); err != nil {
			t.Fatal(err)
		}

		l2 := open(t, dir, 1, nil)
		if l2.LastSeq() != 10 {
			t.Fatalf("cut=%d: LastSeq = %d, want 10", cut, l2.LastSeq())
		}
		got := collect(t, l2, 1)
		if len(got) != 10 {
			t.Fatalf("cut=%d: %d records, want 10", cut, len(got))
		}
		if _, ok := got[11]; ok {
			t.Fatalf("cut=%d: torn record visible", cut)
		}
		// The log must accept the re-appended record after healing.
		appendN(t, l2, 11, 11)
		l2.Close()
	}
}

func TestBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, 1, nil)
	appendN(t, l, 1, 5)
	l.Close()

	segs, _ := listSegments(faultfs.Disk, dir)
	path := filepath.Join(dir, segs[0])
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0x40 // flip a bit inside the last record's payload
	os.WriteFile(path, data, 0o666)

	l2 := open(t, dir, 1, nil)
	defer l2.Close()
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d, want 4 (flipped record dropped)", l2.LastSeq())
	}
}

func TestSealedCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, 1, &Options{SegmentBytes: 128, Sync: SyncNone})
	appendN(t, l, 1, 50)
	if l.SegmentCount() < 2 {
		t.Skip("need multiple segments")
	}
	l.Close()

	segs, _ := listSegments(faultfs.Disk, dir)
	path := filepath.Join(dir, segs[0]) // a sealed segment
	data, _ := os.ReadFile(path)
	data[9] ^= 0xff
	os.WriteFile(path, data, 0o666)

	_, err := Open(dir, 51, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestLaggingLogResumesAtCallerSeq(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, 1, nil)
	appendN(t, l, 1, 3)
	l.Close()
	// Snapshot says epoch 10; the log only reaches 3 (e.g. segments removed
	// by hand). Appends must resume at 11, not 4.
	l2 := open(t, dir, 11, nil)
	defer l2.Close()
	if err := l2.Append(11, []byte("x")); err != nil {
		t.Fatalf("Append(11): %v", err)
	}
}

// TestMissingSegmentDetected removes a middle segment — acknowledged
// records lost outside the healable tail — and requires Replay to fail
// loudly when the replay range needs them, while a range entirely past
// the gap still replays (checkpoint truncation legitimately leaves such
// leading gaps).
func TestMissingSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, 1, &Options{SegmentBytes: 128, Sync: SyncNone})
	appendN(t, l, 1, 60)
	if l.SegmentCount() < 4 {
		t.Skipf("only %d segments", l.SegmentCount())
	}
	l.Close()
	segs, _ := listSegments(faultfs.Disk, dir)
	sort.Strings(segs)
	victim := segs[1] // a sealed middle segment
	victimFirst, _ := parseSegmentName(victim)
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}

	l2 := open(t, dir, 61, nil)
	defer l2.Close()
	err := l2.Replay(1, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay across the gap = %v, want ErrCorrupt", err)
	}
	// Replaying only records after the gap must still work.
	nextFirst, _ := parseSegmentName(segs[2])
	got := collect(t, l2, nextFirst)
	for seq := nextFirst; seq <= 60; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("record %d lost beyond the gap", seq)
		}
	}
	if _, ok := got[victimFirst]; ok {
		t.Fatal("record from the removed segment reappeared")
	}
}

// TestRollbackErasesGroup pins the errored ⇒ absent contract: records
// appended after a TailMark — including across a segment rotation — are
// erased by Rollback, the sequence counter rewinds, and a reopen sees
// none of them.
func TestRollbackErasesGroup(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, 1, &Options{SegmentBytes: 128, Sync: SyncNone})
	appendN(t, l, 1, 5)
	mark := l.TailMark()
	appendN(t, l, 6, 30) // spans at least one rotation at 128-byte segments
	if err := l.Rollback(mark); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq after rollback = %d, want 5", l.LastSeq())
	}
	if got := collect(t, l, 1); len(got) != 5 {
		t.Fatalf("%d records after rollback, want 5", len(got))
	}
	// The log must keep working: the seq the group held is reusable.
	appendN(t, l, 6, 8)
	l.Close()
	l2 := open(t, dir, 9, nil)
	defer l2.Close()
	got := collect(t, l2, 1)
	if len(got) != 8 || got[7] != "payload-7" {
		t.Fatalf("after rollback+reopen: %d records, [7]=%q", len(got), got[7])
	}
}

func TestParseRecordErrors(t *testing.T) {
	rec := frameRecord(1, []byte("hello"))
	if _, _, _, err := ParseRecord(rec); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": rec[:6],
		"truncated":    rec[:len(rec)-1],
		"size zero":    {0, 0, 0, 0, 0, 0, 0, 0},
		"size huge":    {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
	}
	for name, b := range cases {
		if _, _, _, err := ParseRecord(b); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// frameRecord builds one framed record (the same layout Append writes).
func frameRecord(seq uint64, payload []byte) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(seqBytes+len(payload)))
	b = append(b, 0, 0, 0, 0)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = append(b, payload...)
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(b[frameHeader:], castagnoli))
	return b
}
