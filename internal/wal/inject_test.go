package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

// flipOneBit silently corrupts one payload bit of a segment on disk.
func flipOneBit(t *testing.T, dir, name string) {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 20 {
		t.Fatalf("segment %s too small to corrupt", name)
	}
	data[len(data)-3] ^= 0x10
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedFaults drives each WAL write path — append, commit-fsync,
// rotation, truncate-after-checkpoint — into an injected fault and asserts
// the failure surfaces, the log stays usable (after rollback where the
// contract requires one), and every record appended before or after the
// fault replays intact.
func TestInjectedFaults(t *testing.T) {
	cases := []struct {
		name  string
		rules []faultfs.Rule
		run   func(t *testing.T, l *Log, in *faultfs.Inject)
	}{
		{
			// Plain write failure mid-group: rollback, then retry the
			// whole group cleanly.
			name:  "append-write-error",
			rules: []faultfs.Rule{{Op: faultfs.OpWrite, After: 5, Count: 1, Path: segPrefix}},
			run: func(t *testing.T, l *Log, in *faultfs.Inject) {
				appendN(t, l, 1, 5)
				m := l.TailMark()
				var ferr error
				for seq := uint64(6); seq <= 8; seq++ {
					if ferr = l.Append(seq, []byte("x")); ferr != nil {
						break
					}
				}
				if !errors.Is(ferr, faultfs.ErrInjected) {
					t.Fatalf("append group did not hit the injected fault: %v", ferr)
				}
				if err := l.Rollback(m); err != nil {
					t.Fatalf("Rollback: %v", err)
				}
				appendN(t, l, 6, 8)
				if got := collect(t, l, 1); len(got) != 8 {
					t.Fatalf("replay got %d records, want 8", len(got))
				}
			},
		},
		{
			// ENOSPC torn halfway through a frame: rollback erases the
			// torn prefix, the retried group lands whole.
			name:  "append-enospc-torn",
			rules: []faultfs.Rule{{Op: faultfs.OpWrite, After: 3, Count: 1, Err: faultfs.ErrNoSpace, ShortBy: -1, Path: segPrefix}},
			run: func(t *testing.T, l *Log, in *faultfs.Inject) {
				appendN(t, l, 1, 3)
				m := l.TailMark()
				if err := l.Append(4, []byte("torn-victim")); !errors.Is(err, faultfs.ErrNoSpace) {
					t.Fatalf("append = %v, want ENOSPC", err)
				}
				if err := l.Rollback(m); err != nil {
					t.Fatalf("Rollback: %v", err)
				}
				appendN(t, l, 4, 6)
				got := collect(t, l, 1)
				if len(got) != 6 || got[4] != "payload-4" {
					t.Fatalf("replay got %d records, [4]=%q", len(got), got[4])
				}
			},
		},
		{
			// fsync failure on Commit: the group is not acked; a retried
			// Commit after the fault clears succeeds and the data is there.
			name:  "commit-fsync-error",
			rules: []faultfs.Rule{{Op: faultfs.OpSync, After: 0, Count: 1, Path: segPrefix}},
			run: func(t *testing.T, l *Log, in *faultfs.Inject) {
				for seq := uint64(1); seq <= 4; seq++ {
					if err := l.Append(seq, []byte("x")); err != nil {
						t.Fatalf("Append(%d): %v", seq, err)
					}
				}
				if err := l.Commit(); !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("Commit = %v, want injected fsync error", err)
				}
				if err := l.Commit(); err != nil {
					t.Fatalf("retried Commit: %v", err)
				}
				if got := collect(t, l, 1); len(got) != 4 {
					t.Fatalf("replay got %d records, want 4", len(got))
				}
			},
		},
		{
			// Fault on creating the rotation's fresh segment: the append
			// that triggered rotation fails, earlier records stay intact,
			// and once the fault clears appends resume.
			name:  "rotate-open-error",
			rules: []faultfs.Rule{{Op: faultfs.OpOpen, After: 1, Count: 1, Path: segPrefix}},
			run: func(t *testing.T, l *Log, in *faultfs.Inject) {
				// Append in groups of 5 with the store's mark/rollback/retry
				// discipline; the first rotation (second segment open) fails.
				sawFault := false
				for seq := uint64(1); seq <= 25; {
					m := l.TailMark()
					end := seq + 4
					var gerr error
					for s := seq; s <= end; s++ {
						if gerr = l.Append(s, []byte(fmt.Sprintf("payload-%d", s))); gerr != nil {
							break
						}
					}
					if gerr == nil {
						gerr = l.Commit()
					}
					if gerr != nil {
						if !errors.Is(gerr, faultfs.ErrInjected) {
							t.Fatalf("group at %d: %v", seq, gerr)
						}
						sawFault = true
						if err := l.Rollback(m); err != nil {
							t.Fatalf("Rollback: %v", err)
						}
						continue // retry the same group
					}
					seq = end + 1
				}
				if !sawFault {
					t.Fatal("rotation never hit the injected open fault")
				}
				got := collect(t, l, 1)
				if len(got) != 25 || got[23] != "payload-23" {
					t.Fatalf("replay got %d records, [23]=%q", len(got), got[23])
				}
			},
		},
		{
			// Remove failure during checkpoint truncation: TruncateBefore
			// errors, nothing is lost, and the retry drops the segments.
			name:  "truncate-remove-error",
			rules: []faultfs.Rule{{Op: faultfs.OpRemove, After: 0, Count: 1, Path: segPrefix}},
			run: func(t *testing.T, l *Log, in *faultfs.Inject) {
				appendN(t, l, 1, 40) // several 128-byte segments
				if l.SegmentCount() < 3 {
					t.Skipf("only %d segments", l.SegmentCount())
				}
				before := l.SegmentCount()
				if err := l.TruncateBefore(30); !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("TruncateBefore = %v, want injected remove error", err)
				}
				if err := l.TruncateBefore(30); err != nil {
					t.Fatalf("retried TruncateBefore: %v", err)
				}
				if l.SegmentCount() >= before {
					t.Fatalf("retry did not drop segments (%d -> %d)", before, l.SegmentCount())
				}
				if got := collect(t, l, 31); len(got) != 10 {
					t.Fatalf("replay from 31 got %d records, want 10", len(got))
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			in := faultfs.NewInject(faultfs.Disk, tc.rules...)
			l, err := Open(dir, 1, &Options{SegmentBytes: 128, FS: in})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer l.Close()
			tc.run(t, l, in)
			if in.Fired() == 0 {
				t.Fatal("fault plan never fired — the test exercised nothing")
			}
		})
	}
}

// TestTornWriteCrashRecovery tears a frame mid-write, abandons the handle
// (the crash), and reopens: the torn tail must be cut and every previously
// committed record preserved.
func TestTornWriteCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInject(faultfs.Disk, faultfs.Rule{Op: faultfs.OpWrite, After: 6, Count: 1, ShortBy: -1, Path: segPrefix})
	l, err := Open(dir, 1, &Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 6)
	if err := l.Append(7, []byte("torn")); err == nil {
		t.Fatal("torn append did not error")
	}
	// Crash: no rollback, no close.
	l2 := open(t, dir, 7, nil)
	defer l2.Close()
	if got := l2.LastSeq(); got != 6 {
		t.Fatalf("LastSeq after heal = %d, want 6", got)
	}
	got := collect(t, l2, 1)
	if len(got) != 6 || got[6] != "payload-6" {
		t.Fatalf("replay got %d records, [6]=%q", len(got), got[6])
	}
}

// TestQuarantineAndReset pins the scrubber/recovery APIs: CheckSegment
// flags a bit-flipped sealed segment, QuarantineSegment moves it aside, and
// Reset rebuilds an empty log at a chosen seq.
func TestQuarantineAndReset(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, 1, &Options{SegmentBytes: 128, Sync: SyncNone})
	appendN(t, l, 1, 40)
	segs := l.Segments()
	if len(segs) < 3 {
		t.Skipf("only %d segments", len(segs))
	}
	for _, s := range segs[:len(segs)-1] {
		if _, err := l.CheckSegment(s.Name); err != nil {
			t.Fatalf("CheckSegment(%s) on clean data: %v", s.Name, err)
		}
	}
	if _, err := l.CheckSegment(l.ActiveSegment()); err == nil {
		t.Fatal("CheckSegment accepted the active segment")
	}
	l.Close()

	// Flip one bit in a sealed segment and reopen through a flip-free disk.
	l2 := open(t, dir, 41, &Options{SegmentBytes: 128})
	defer l2.Close()
	victim := l2.Segments()[1]
	flipOneBit(t, dir, victim.Name)
	if _, err := l2.CheckSegment(victim.Name); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("CheckSegment on flipped segment = %v, want ErrCorrupt", err)
	}
	if err := l2.QuarantineSegment(victim.Name); err != nil {
		t.Fatalf("QuarantineSegment: %v", err)
	}
	if err := l2.QuarantineSegment(l2.ActiveSegment()); err == nil {
		t.Fatal("QuarantineSegment accepted the active segment")
	}
	names, err := listSegments(faultfs.Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == victim.Name {
			t.Fatal("quarantined segment still listed as live")
		}
	}

	if err := l2.Reset(100); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := l2.LastSeq(); got != 99 {
		t.Fatalf("LastSeq after Reset = %d, want 99", got)
	}
	appendN(t, l2, 100, 102)
	if got := collect(t, l2, 100); len(got) != 3 {
		t.Fatalf("replay after Reset got %d records, want 3", len(got))
	}
}
