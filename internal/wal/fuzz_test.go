package wal

import (
	"bytes"
	"testing"
)

// FuzzParseRecord feeds the record reader arbitrary byte soup — seeded with
// valid frames and systematic corruptions of them — and requires that it
// either decodes exactly what was framed or errors; it must never panic,
// and a corrupt size field must never drive the reported frame length past
// the input.
func FuzzParseRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(frameRecord(1, nil))
	f.Add(frameRecord(42, []byte("batch payload")))
	long := frameRecord(7, bytes.Repeat([]byte{0xab}, 300))
	f.Add(long)
	f.Add(long[:len(long)-5]) // torn tail
	flipped := append([]byte(nil), long...)
	flipped[20] ^= 1 // bit flip inside the body
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, payload, n, err := ParseRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("frame length %d for %d-byte input", n, len(data))
		}
		// A successfully parsed record must re-frame to the same bytes.
		if !bytes.Equal(frameRecord(seq, payload), data[:n]) {
			t.Fatalf("parse/frame round trip diverged")
		}
	})
}

// FuzzScanSegment drives the whole-segment scanner (the torn-tail healer)
// over arbitrary input: it must terminate without panicking and report a
// truncation offset that both lies inside the input and marks a cleanly
// re-scannable prefix.
func FuzzScanSegment(f *testing.F) {
	var seg []byte
	for seq := uint64(1); seq <= 5; seq++ {
		seg = append(seg, frameRecord(seq, []byte("payload"))...)
	}
	f.Add(seg, uint64(1))
	f.Add(seg[:len(seg)-3], uint64(1))
	f.Add([]byte("garbage"), uint64(9))
	f.Fuzz(func(t *testing.T, data []byte, first uint64) {
		last, good, err := scanSegment(data, first)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("truncation offset %d outside [0,%d]", good, len(data))
		}
		if _, good2, err2 := scanSegment(data[:good], first); err2 != nil || good2 != good {
			t.Fatalf("healed prefix does not re-scan cleanly: %v", err2)
		}
		if err == nil && last != first-1 && good == 0 {
			t.Fatalf("clean scan reported records but consumed nothing")
		}
	})
}
