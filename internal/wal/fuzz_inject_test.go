package wal

import (
	"fmt"
	"testing"

	"repro/internal/faultfs"
)

// FuzzAppendUnderFaults drives the append/commit/rollback protocol under
// an arbitrary parsed fault plan and holds the log to its durability
// contract: whatever the schedule does, a clean reopen must replay a
// contiguous, correctly-payloaded prefix that covers every acked record.
// An op is acked only when Append and Commit both succeeded; a failed op
// is rolled back to its TailMark, and a FAILED rollback ends the run (the
// store degrades there and resets the log before writing again).
func FuzzAppendUnderFaults(f *testing.F) {
	f.Add("sync@1+2%wal-", uint8(6))
	f.Add("short@0+3", uint8(10))
	f.Add("enospc@2+4%wal-", uint8(8))
	f.Add("write@3+2,rename@0+1", uint8(12))
	f.Add("open@1+1%wal-,truncate@0+2", uint8(9))
	f.Fuzz(func(t *testing.T, spec string, nOps uint8) {
		rules, err := faultfs.ParsePlan(spec)
		if err != nil {
			return
		}
		dir := t.TempDir()
		in := faultfs.NewInject(faultfs.Disk, rules...)
		l, err := Open(dir, 1, &Options{FS: in, SegmentBytes: 128})
		if err != nil {
			return
		}
		payload := func(seq uint64) []byte {
			return []byte(fmt.Sprintf("record-%04d-payload", seq))
		}
		var acked uint64
		seq := uint64(1)
		for op := uint8(0); op < nOps; op++ {
			mark := l.TailMark()
			err := l.Append(seq, payload(seq))
			if err == nil {
				err = l.Commit()
			}
			if err == nil {
				acked = seq
				seq++
				continue
			}
			if rerr := l.Rollback(mark); rerr != nil {
				break
			}
		}
		l.Close()

		// The faults stop (clean disk) and a fresh process reopens: this
		// must never fail, and must deliver 1..K in order with K >= acked
		// (an op whose Commit failed after a full append may linger when
		// its rollback also failed — that is exactly the case the store
		// answers by resetting the log, never by re-acking).
		l2, err := Open(dir, seq, nil)
		if err != nil {
			t.Fatalf("reopen after faults: %v", err)
		}
		defer l2.Close()
		next := uint64(1)
		err = l2.Replay(1, func(got uint64, data []byte) error {
			if got != next {
				t.Fatalf("replay out of sequence: got %d, want %d", got, next)
			}
			if string(data) != string(payload(got)) {
				t.Fatalf("record %d payload corrupted: %q", got, data)
			}
			next++
			return nil
		})
		if err != nil {
			t.Fatalf("replay after faults: %v", err)
		}
		if next <= acked {
			t.Fatalf("acked records lost: replayed through %d, acked %d", next-1, acked)
		}
	})
}
