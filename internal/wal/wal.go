// Package wal implements the store's segmented write-ahead log: an
// append-only sequence of CRC-framed records spread over size-bounded
// segment files, with a configurable fsync policy, whole-segment truncation
// after checkpoints, and torn-tail recovery on open.
//
// # Record framing and durability contract
//
// Every record is framed as
//
//	u32 size   — length of the sequence number + payload that follow (≥ 8)
//	u32 crc    — CRC-32C (Castagnoli) over those size bytes
//	u64 seq    — the record's log sequence number
//	payload    — size-8 opaque bytes
//
// in little-endian byte order. Sequence numbers are assigned by the caller
// and must advance by exactly one per append; the store uses the batch
// epoch, so "WAL record seq" and "store epoch" coincide. A record is
// durable once Commit (under SyncAlways) or Sync has returned: the store
// acknowledges a batch only after that point, so an acked batch survives
// any crash, while a batch lost mid-write leaves a torn tail that recovery
// discards — exactly the "acked implies durable, unacked implies absent or
// torn-away" contract the crash-recovery tests pin down.
//
// # Segments, truncation, torn tails
//
// Records append to the active segment file, named wal-<first-seq>.seg by
// the sequence number of its first record. When the active segment exceeds
// Options.SegmentBytes it is sealed (synced, closed) and a fresh segment
// starts, so TruncateBefore can drop whole files that a checkpoint has made
// obsolete without rewriting anything. On open, sealed segments must parse
// completely — corruption there means real data loss and is reported as an
// error — while the last segment is scanned record by record and truncated
// at the first invalid frame (short header, impossible size, CRC mismatch,
// or non-consecutive seq), recovering from a crash that tore the final
// write.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/obs"
)

// SyncMode selects the fsync policy applied by Commit.
type SyncMode int

const (
	// SyncAlways fsyncs the active segment on every Commit: an
	// acknowledged batch survives OS and power failure.
	SyncAlways SyncMode = iota
	// SyncNone never fsyncs on Commit; data reaches the OS page cache
	// only. A process crash loses nothing, a machine crash may lose the
	// most recent batches. ~10-100× higher append throughput.
	SyncNone
)

// MaxRecordBytes bounds a single record's size field; larger values are
// treated as corruption. It exists so a flipped bit in a size field cannot
// make recovery attempt a multi-gigabyte read.
const MaxRecordBytes = 1 << 28

const (
	frameHeader = 8 // u32 size + u32 crc
	seqBytes    = 8
	segPrefix   = "wal-"
	segSuffix   = ".seg"
)

// ErrCorrupt reports corruption outside the recoverable torn tail: a sealed
// segment that does not parse, or a segment whose first record disagrees
// with its filename. Errors wrapping it mean acknowledged data was lost.
var ErrCorrupt = errors.New("wal: corrupt segment")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold for the active segment.
	// Defaults to 4 MiB.
	SegmentBytes int64
	// Sync is the Commit fsync policy. Defaults to SyncAlways.
	Sync SyncMode
	// FS is the filesystem the log runs on. Nil means the real disk; tests
	// substitute a faultfs.Inject to fire storage errors deterministically.
	FS faultfs.FS
	// Obs, when non-nil, receives the log's instrumentation: fsync
	// latency, append and group-commit counters. Nil disables it at zero
	// cost on the append path.
	Obs *obs.Registry
}

// DefaultOptions returns the standard configuration: 4 MiB segments,
// fsync on every commit.
func DefaultOptions() Options { return Options{SegmentBytes: 4 << 20, Sync: SyncAlways} }

type segment struct {
	name  string
	first uint64 // seq of the segment's first record (from the filename)
	size  int64
}

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use; in the store exactly one goroutine appends while checkpoints
// truncate concurrently.
type Log struct {
	mu     sync.Mutex
	dir    string
	fs     faultfs.FS
	opts   Options
	segs   []segment // ascending by first; last is active
	active faultfs.File
	next   uint64 // seq the next Append must carry
	frame  []byte // reusable framing buffer
	closed bool

	// Instrumentation; all nil (no-op) unless Options.Obs was set.
	fsyncHist     *obs.Histogram
	appends       *obs.Counter
	commits       *obs.Counter
	commitBatches *obs.Counter
	pending       uint64 // appends since the last Commit, under mu
}

// Open opens (or creates) the log in dir and recovers its tail. nextSeq is
// the caller's expected next sequence number — the recovered store epoch
// plus one; it names the first segment of an empty log and guards against
// a log that lags the snapshot it accompanies (appends then resume at
// nextSeq in a fresh segment). Sealed segments failing to parse, or a
// scanned tail that has advanced beyond any caller expectation mismatch,
// surface as errors wrapping ErrCorrupt.
func Open(dir string, nextSeq uint64, opts *Options) (*Log, error) {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	fsys := faultfs.Or(o.FS)
	if err := fsys.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, fs: fsys, opts: o}
	l.fsyncHist = o.Obs.Histogram("qpgc_wal_fsync_seconds")
	l.appends = o.Obs.Counter("qpgc_wal_appends_total")
	l.commits = o.Obs.Counter("qpgc_wal_group_commits_total")
	l.commitBatches = o.Obs.Counter("qpgc_wal_group_commit_batches_total")
	names, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		l.next = nextSeq
		if err := l.startSegment(nextSeq); err != nil {
			return nil, err
		}
		return l, nil
	}
	for _, name := range names {
		first, err := parseSegmentName(name)
		if err != nil {
			return nil, err
		}
		l.segs = append(l.segs, segment{name: name, first: first})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })

	// Sealed segments must parse completely; the last one may carry a torn
	// tail, which is cut off in place.
	for i := range l.segs {
		s := &l.segs[i]
		data, err := fsys.ReadFile(filepath.Join(dir, s.name))
		if err != nil {
			return nil, err
		}
		last, good, scanErr := scanSegment(data, s.first)
		sealed := i < len(l.segs)-1
		if scanErr != nil && sealed {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, s.name, scanErr)
		}
		if !sealed && int(good) < len(data) {
			if err := fsys.Truncate(filepath.Join(dir, s.name), good); err != nil {
				return nil, err
			}
			data = data[:good]
		}
		s.size = int64(len(data))
		if last >= s.first { // segment holds at least one record
			l.next = last + 1
		} else {
			l.next = s.first
		}
	}

	// Re-open the last segment for appending.
	tail := &l.segs[len(l.segs)-1]
	f, err := fsys.OpenFile(filepath.Join(dir, tail.name), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, err
	}
	l.active = f

	// A log lagging its snapshot (e.g. segments deleted by hand) resumes at
	// the caller's sequence in a fresh segment, keeping the invariant that a
	// segment's records are consecutive from its filename's seq. An empty
	// tail — a crash between segment creation and its first record — is
	// removed rather than sealed, so no empty segment lingers to confuse
	// later gap accounting.
	if nextSeq > l.next {
		l.next = nextSeq
		if tail.size == 0 {
			if err := l.active.Close(); err != nil {
				return nil, err
			}
			if err := fsys.Remove(filepath.Join(dir, tail.name)); err != nil {
				return nil, err
			}
			l.segs = l.segs[:len(l.segs)-1]
			if err := l.startSegment(nextSeq); err != nil {
				return nil, err
			}
		} else if err := l.rotateLocked(); err != nil {
			l.active.Close()
			return nil, err
		}
	}
	return l, nil
}

// Append frames one record and writes it to the active segment, rotating
// first if the segment is over the size threshold. seq must be exactly
// LastSeq()+1. The record is not durable until Commit or Sync returns.
func (l *Log) Append(seq uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq != l.next {
		return fmt.Errorf("wal: append seq %d, want %d", seq, l.next)
	}
	size := seqBytes + len(payload)
	if size > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", size)
	}
	if l.segs[len(l.segs)-1].size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	l.frame = l.frame[:0]
	l.frame = binary.LittleEndian.AppendUint32(l.frame, uint32(size))
	l.frame = append(l.frame, 0, 0, 0, 0) // crc placeholder
	l.frame = binary.LittleEndian.AppendUint64(l.frame, seq)
	l.frame = append(l.frame, payload...)
	binary.LittleEndian.PutUint32(l.frame[4:8], crc32.Checksum(l.frame[frameHeader:], castagnoli))
	if _, err := l.active.Write(l.frame); err != nil {
		return err
	}
	l.segs[len(l.segs)-1].size += int64(len(l.frame))
	l.next = seq + 1
	l.appends.Add(1)
	l.pending++
	return nil
}

// Commit makes everything appended so far durable under the configured
// policy: an fsync of the active segment for SyncAlways, a no-op for
// SyncNone. The store calls it once per coalesced batch group before
// acknowledging the group's callers (group commit).
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.pending > 0 {
		l.commits.Add(1)
		l.commitBatches.Add(l.pending)
		l.pending = 0
	}
	if l.opts.Sync == SyncNone {
		return nil
	}
	if l.fsyncHist == nil {
		return l.active.Sync()
	}
	start := time.Now()
	err := l.active.Sync()
	l.fsyncHist.Observe(time.Since(start))
	return err
}

// Sync fsyncs the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.active.Sync()
}

// Mark is an opaque log position taken before a group of appends, for
// Rollback.
type Mark struct {
	segIndex int
	segName  string
	size     int64
	next     uint64
}

// TailMark records the current end of the log. Take one before appending
// a batch group so a failed group can be rolled back.
func (l *Log) TailMark() Mark {
	l.mu.Lock()
	defer l.mu.Unlock()
	tail := l.segs[len(l.segs)-1]
	return Mark{segIndex: len(l.segs) - 1, segName: tail.name, size: tail.size, next: l.next}
}

// Rollback truncates the log back to a TailMark, erasing every record
// appended since — the store uses it when a group's append or commit
// fails, so batches whose callers saw an error can never resurface on
// restart. Segments created after the mark are deleted and the marked
// segment's file is truncated and re-opened for appending. Rollback is
// best-effort on an already-failing disk; its own error means the tail
// could not be erased.
func (l *Log) Rollback(m Mark) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if m.segIndex >= len(l.segs) || l.segs[m.segIndex].name != m.segName {
		return fmt.Errorf("wal: rollback mark names unknown segment %s", m.segName)
	}
	// Drop whole segments the group caused to be created. The close error
	// is ignored: a failed rotation leaves the handle already closed, and
	// the marked segment is reopened below either way.
	l.active.Close()
	for _, s := range l.segs[m.segIndex+1:] {
		if err := l.fs.Remove(filepath.Join(l.dir, s.name)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return err
		}
	}
	l.segs = l.segs[:m.segIndex+1]
	path := filepath.Join(l.dir, m.segName)
	if err := l.fs.Truncate(path, m.size); err != nil {
		return err
	}
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	l.active = f
	l.segs[m.segIndex].size = m.size
	l.next = m.next
	l.pending = 0 // the rolled-back group's appends will never group-commit
	return l.active.Sync()
}

// Replay streams every record with seq >= from to fn, in sequence order.
// It must not run concurrently with Append (the store replays before its
// writer starts). A decoding error in any segment — all tails were already
// healed by Open — is reported wrapping ErrCorrupt, as is a sequence gap
// between segments that the replay range needs: a missing sealed segment
// means acknowledged records were lost, and recovery must fail loudly
// rather than serve a state with silently dropped batches. Gaps entirely
// below from are fine (checkpoint truncation works in whole segments).
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	havePrev := false
	var prevLast uint64
	for _, s := range l.segs {
		if havePrev && s.first != prevLast+1 {
			if s.first < prevLast+1 {
				return fmt.Errorf("%w: segment %s overlaps seq %d", ErrCorrupt, s.name, prevLast)
			}
			if s.first > from { // the missing range [prevLast+1, s.first) intersects [from, ∞)
				return fmt.Errorf("%w: records %d-%d missing before %s", ErrCorrupt, prevLast+1, s.first-1, s.name)
			}
		}
		havePrev = true
		prevLast = s.first - 1 // advanced by the scan below
		if s.size == 0 {
			continue
		}
		data, err := l.fs.ReadFile(filepath.Join(l.dir, s.name))
		if err != nil {
			return err
		}
		off := 0
		seq := s.first
		for off < len(data) {
			gotSeq, payload, n, err := ParseRecord(data[off:])
			if err != nil {
				return fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, s.name, off, err)
			}
			if gotSeq != seq {
				return fmt.Errorf("%w: %s at offset %d: seq %d, want %d", ErrCorrupt, s.name, off, gotSeq, seq)
			}
			if gotSeq >= from {
				if err := fn(gotSeq, payload); err != nil {
					return err
				}
			}
			off += n
			seq++
		}
		prevLast = seq - 1
	}
	return nil
}

// TruncateBefore deletes sealed segments every record of which has
// seq <= upTo — the checkpoint already covers them. The active segment is
// never deleted, so the log always has a place to append.
func (l *Log) TruncateBefore(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	keep := l.segs[:0]
	removed := false
	for i, s := range l.segs {
		sealed := i < len(l.segs)-1
		// A sealed segment's records end just before its successor's first.
		if sealed && l.segs[i+1].first <= upTo+1 {
			if err := l.fs.Remove(filepath.Join(l.dir, s.name)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
				return err
			}
			removed = true
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep
	if removed {
		return syncDir(l.fs, l.dir)
	}
	return nil
}

// LastSeq returns the sequence number of the last appended record, or one
// less than the next expected sequence for an empty log.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// SizeBytes returns the total on-disk size of all segments.
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, s := range l.segs {
		n += s.size
	}
	return n
}

// SegmentCount returns the number of live segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// SegmentInfo describes one live segment file, for inspection and the
// integrity scrubber.
type SegmentInfo struct {
	// Name is the segment's file name within the log directory.
	Name string
	// First is the sequence number of the segment's first record.
	First uint64
	// Size is the segment's size in bytes.
	Size int64
	// Sealed reports whether the segment is immutable (not the active one).
	Sealed bool
}

// Segments lists the live segments in sequence order; the last entry is the
// active segment.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	infos := make([]SegmentInfo, len(l.segs))
	for i, s := range l.segs {
		infos[i] = SegmentInfo{Name: s.name, First: s.first, Size: s.size, Sealed: i < len(l.segs)-1}
	}
	return infos
}

// ActiveSegment returns the name of the segment currently accepting
// appends.
func (l *Log) ActiveSegment() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[len(l.segs)-1].name
}

// CheckSegment re-reads a sealed segment and verifies every record frame
// (CRC and sequence continuity), returning the bytes read — the scrubber's
// rate-accounting unit. Corruption is reported wrapping ErrCorrupt. The
// read runs outside the log mutex: sealed segments are immutable, and one
// deleted mid-scrub by a concurrent checkpoint surfaces as ErrNotExist for
// the caller to skip. Checking the active segment is refused — it is
// growing under the writer.
func (l *Log) CheckSegment(name string) (int64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	var first uint64
	found, sealed := false, false
	for i, s := range l.segs {
		if s.name == name {
			first, found, sealed = s.first, true, i < len(l.segs)-1
			break
		}
	}
	fsys, dir := l.fs, l.dir
	l.mu.Unlock()
	if !found {
		return 0, fmt.Errorf("wal: check of unknown segment %s", name)
	}
	if !sealed {
		return 0, fmt.Errorf("wal: check of active segment %s refused", name)
	}
	data, err := fsys.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return 0, err
	}
	if _, _, scanErr := scanSegment(data, first); scanErr != nil {
		return int64(len(data)), fmt.Errorf("%w: %s: %v", ErrCorrupt, name, scanErr)
	}
	return int64(len(data)), nil
}

// QuarantineSegment renames a corrupt sealed segment to name+".quarantine"
// and drops it from the log, preserving the evidence while getting it out
// of the replay path. The caller must immediately force a checkpoint past
// the log's tail: the quarantined records are gone from the log, and only
// a snapshot that covers them keeps the store recoverable.
func (l *Log) QuarantineSegment(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for i, s := range l.segs {
		if s.name != name {
			continue
		}
		if i == len(l.segs)-1 {
			return fmt.Errorf("wal: quarantine of active segment %s refused", name)
		}
		path := filepath.Join(l.dir, name)
		if err := l.fs.Rename(path, path+".quarantine"); err != nil {
			return err
		}
		l.segs = append(l.segs[:i], l.segs[i+1:]...)
		return syncDir(l.fs, l.dir)
	}
	return fmt.Errorf("wal: quarantine of unknown segment %s", name)
}

// Reset discards every segment and starts an empty log whose next record
// will carry nextSeq. It is the recovery loop's last resort once an
// emergency checkpoint has made the log's contents redundant: whatever
// state the old segments (or the poisoned active file handle) were in no
// longer matters.
func (l *Log) Reset(nextSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.active.Close() // ignore errors: the handle may be poisoned by a failed fsync
	for _, s := range l.segs {
		if err := l.fs.Remove(filepath.Join(l.dir, s.name)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return err
		}
	}
	l.segs = nil
	l.next = nextSeq
	l.pending = 0
	return l.startSegment(nextSeq)
}

// Close syncs and closes the active segment. The log is unusable
// afterwards; Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.active.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// rotateLocked seals the active segment and starts a fresh one whose first
// record will be l.next. Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if err := l.active.Sync(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	return l.startSegment(l.next)
}

// startSegment creates and opens the segment file for first, appending its
// metadata entry. Callers hold l.mu (or own the log exclusively in Open).
func (l *Log) startSegment(first uint64) error {
	name := segmentName(first)
	f, err := l.fs.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.segs = append(l.segs, segment{name: name, first: first})
	return nil
}

// ParseRecord decodes the first record framed in b, returning its sequence
// number, a payload view into b, and the total frame length consumed. It
// is the unit the torn-tail scanner and the fuzz target exercise: any
// input — truncated, bit-flipped, or adversarial — yields an error, never
// a panic or an allocation proportional to a corrupt size field.
func ParseRecord(b []byte) (seq uint64, payload []byte, n int, err error) {
	if len(b) < frameHeader {
		return 0, nil, 0, fmt.Errorf("short frame header (%d bytes)", len(b))
	}
	size := int(binary.LittleEndian.Uint32(b[0:4]))
	if size < seqBytes || size > MaxRecordBytes {
		return 0, nil, 0, fmt.Errorf("impossible record size %d", size)
	}
	if len(b) < frameHeader+size {
		return 0, nil, 0, fmt.Errorf("truncated record: %d of %d bytes", len(b)-frameHeader, size)
	}
	body := b[frameHeader : frameHeader+size]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return 0, nil, 0, errors.New("crc mismatch")
	}
	return binary.LittleEndian.Uint64(body[:seqBytes]), body[seqBytes:], frameHeader + size, nil
}

// scanSegment walks data record by record, verifying framing and that
// sequence numbers run consecutively from first. It returns the last valid
// seq (first-1 when none), the byte offset just past the last valid
// record — the truncation point for a torn tail — and the error that
// stopped the scan (nil for a clean segment).
func scanSegment(data []byte, first uint64) (last uint64, good int64, err error) {
	off := 0
	seq := first
	for off < len(data) {
		gotSeq, _, n, perr := ParseRecord(data[off:])
		if perr != nil {
			return seq - 1, int64(off), perr
		}
		if gotSeq != seq {
			return seq - 1, int64(off), fmt.Errorf("seq %d, want %d", gotSeq, seq)
		}
		off += n
		seq++
	}
	return seq - 1, int64(off), nil
}

// SegmentCheck is one segment's result from VerifyDir.
type SegmentCheck struct {
	// Name is the segment file's name; Bytes its size on disk.
	Name  string
	Bytes int64
	// Records counts the valid records scanned before any damage.
	Records uint64
	// Torn reports a damaged tail on the final segment: recoverable — Open
	// truncates it. Err carries damage on a sealed segment (real data
	// loss) or a read failure.
	Torn bool
	Err  error
}

// VerifyDir scans every WAL segment in dir offline — without opening a
// Log and without modifying anything — verifying frame CRCs and sequence
// continuity. Results come back in segment order. Damage on the final
// segment is reported as Torn (Open would heal it by truncation); damage
// anywhere else wraps ErrCorrupt in Err. A nil fsys means the real disk.
func VerifyDir(fsys faultfs.FS, dir string) ([]SegmentCheck, error) {
	fsys = faultfs.Or(fsys)
	names, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	sort.Strings(names) // fixed-width hex: lexicographic == numeric
	checks := make([]SegmentCheck, 0, len(names))
	for i, name := range names {
		c := SegmentCheck{Name: name}
		first, perr := parseSegmentName(name)
		if perr != nil {
			c.Err = perr
			checks = append(checks, c)
			continue
		}
		data, rerr := fsys.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			c.Err = rerr
			checks = append(checks, c)
			continue
		}
		c.Bytes = int64(len(data))
		last, _, serr := scanSegment(data, first)
		if last >= first {
			c.Records = last - first + 1
		}
		if serr != nil {
			if i == len(names)-1 {
				c.Torn = true
			} else {
				c.Err = fmt.Errorf("%w: %s: %v", ErrCorrupt, name, serr)
			}
		}
		checks = append(checks, c)
	}
	return checks, nil
}

// listSegments returns the names of all segment files in dir.
func listSegments(fsys faultfs.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// segmentName formats the filename for a segment whose first record is seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix)
}

// parseSegmentName extracts the first-record seq from a segment filename.
func parseSegmentName(name string) (uint64, error) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad segment name %q", ErrCorrupt, name)
	}
	return v, nil
}

// syncDir fsyncs a directory so entry creation/deletion survives a crash.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
