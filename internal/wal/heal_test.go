package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// TestEmptyOnlySegmentHeals pins the crash window between segment creation
// and the first record: a directory holding a single zero-length segment
// must open silently and accept appends at the segment's named seq.
func TestEmptyOnlySegmentHeals(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), nil, 0o666); err != nil {
		t.Fatal(err)
	}
	l := open(t, dir, 1, nil)
	defer l.Close()
	if got := l.LastSeq(); got != 0 {
		t.Fatalf("LastSeq = %d, want 0", got)
	}
	appendN(t, l, 1, 5)
	if got := collect(t, l, 1); len(got) != 5 {
		t.Fatalf("replay got %d records, want 5", len(got))
	}
}

// TestEmptyFinalSegmentHeals pins the crash window mid-rotation: sealed
// segments followed by a zero-length final one. Open must resume appending
// into the empty tail at its named seq with no record lost.
func TestEmptyFinalSegmentHeals(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, 1, &Options{SegmentBytes: 128, Sync: SyncNone})
	appendN(t, l, 1, 30)
	last := l.LastSeq()
	l.Close()
	// Simulate the crash: a fresh segment was created but never written.
	if err := os.WriteFile(filepath.Join(dir, segmentName(last+1)), nil, 0o666); err != nil {
		t.Fatal(err)
	}

	l2 := open(t, dir, last+1, nil)
	defer l2.Close()
	if got := l2.LastSeq(); got != last {
		t.Fatalf("LastSeq = %d, want %d", got, last)
	}
	appendN(t, l2, last+1, last+10)
	got := collect(t, l2, 1)
	for seq := uint64(1); seq <= last+10; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("record %d missing after heal", seq)
		}
	}
}

// TestEmptyTailRemovedWhenLagging pins the Open path where the caller's
// nextSeq is ahead of a zero-length tail segment (snapshot ahead of the
// log): the stale empty segment must be deleted, not sealed, leaving no
// gap-confusing artifact on disk.
func TestEmptyTailRemovedWhenLagging(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(3)), nil, 0o666); err != nil {
		t.Fatal(err)
	}
	l := open(t, dir, 10, nil)
	appendN(t, l, 10, 12)
	l.Close()

	if _, err := os.Stat(filepath.Join(dir, segmentName(3))); !os.IsNotExist(err) {
		t.Fatal("stale empty segment wal-3 survived Open")
	}
	l2 := open(t, dir, 13, nil)
	defer l2.Close()
	if got := collect(t, l2, 10); len(got) != 3 {
		t.Fatalf("replay got %d records, want 3", len(got))
	}
}
