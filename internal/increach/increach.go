// Package increach implements incRCM, the incremental maintenance of
// reachability preserving compression under batch edge updates
// (Section 5.1 of the paper).
//
// The problem is unbounded even for unit updates (Theorem 6), so no
// algorithm can run in time f(|AFF|); the paper's incRCM runs in
// O(|AFF|·|Gr|), touching the compressed graph and the affected area but
// never re-traversing all of G. This maintainer follows that structure:
//
//   - It owns the evolving graph and maintains the SCC condensation
//     incrementally: insertions that close a cycle merge the components on
//     the new cycle (found by forward/backward search over the condensation
//     DAG, not over G); intra-component deletions re-decompose only that
//     component's member subgraph; inter-component deletions decrement
//     member-edge support counts and drop the condensation edge at zero.
//   - Redundant updates are reduced exactly (the paper's step 1): an
//     insertion whose endpoints are already connected and a deletion with a
//     surviving alternate path leave the transitive closure — and hence the
//     compression — untouched. Detection uses condensation-level search
//     only.
//   - The affected area AFF is the set of components whose strict
//     ancestor or descendant set changed. It is computed as the
//     backward/forward cones of the update endpoints over the condensation
//     DAG (augmented with deleted condensation edges, so shrinkage is
//     covered too), plus all merged/split components.
//   - Only AFF components get their (ancestor set, descendant set)
//     signature recomputed, by BFS over the condensation. They are
//     regrouped among themselves and matched against surviving classes
//     filtered by (topological rank, |desc|, |anc|) — Lemma 7 justifies the
//     rank filter. Non-AFF components keep their classes: their signatures
//     are unchanged by construction of AFF.
//
// Property tests verify after every batch that the maintained compression
// equals batch recompression (reach.Compress) of the current graph, both
// as a partition and as a quotient graph.
package increach

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/reach"
)

// Stats reports the work of one Apply call.
type Stats struct {
	// EffectiveUpdates counts updates that survived no-op reduction.
	EffectiveUpdates int
	// RedundantUpdates counts effective updates that provably left the
	// transitive closure unchanged (the paper's reduced ΔG).
	RedundantUpdates int
	// AffComponents is |AFF|: components whose signature was recomputed.
	AffComponents int
	// Merges and Splits count SCC structure changes.
	Merges, Splits int
}

type sccInfo struct {
	members []graph.Node
	out     map[int32]int32 // successor component -> member-edge support
	in      map[int32]int32
	cyclic  bool
	dead    bool
}

// Maintainer owns an evolving graph and maintains its reachability
// preserving compression across update batches.
type Maintainer struct {
	g      *graph.Graph
	compOf []int32 // node -> component id
	sccs   []sccInfo

	classOfScc []int32           // component -> class id
	classSccs  map[int32][]int32 // class id -> live component ids
	nextClass  int32

	// Cached signature cardinalities per component; exact for live
	// components because every component whose sets change is in AFF and
	// refreshed by regroup.
	descCount, ancCount []int32

	comp    *reach.Compressed
	grCSR   *graph.CSR // frozen snapshot of comp.Gr, lazily built, nil when stale
	dirtyGr bool

	// visited is reusable traversal scratch over component ids;
	// visitedNodes over node ids. Both cleaned after every use.
	visited      []bool
	visitedNodes []bool
	visited2     []byte
}

// New takes ownership of g, compresses it, and returns the maintainer.
func New(g *graph.Graph) *Maintainer {
	m := &Maintainer{g: g}
	m.initFromGraph()
	return m
}

// initFromGraph (re)derives all maintained state from m.g. Used at
// construction and as the large-AFF fallback: when the affected area
// approaches the whole condensation, batch recomputation (windowed DP,
// word-parallel) is cheaper than per-component BFS, so the maintainer
// degrades gracefully to batch cost instead of exceeding it — mirroring
// how the unboundedness of RCM (Theorem 6) manifests in practice.
func (m *Maintainer) initFromGraph() {
	g := m.g
	m.classSccs = make(map[int32][]int32)
	m.nextClass = 0
	s := graph.Tarjan(g)
	m.compOf = append([]int32(nil), s.Comp...)
	m.sccs = make([]sccInfo, s.NumComponents())
	for id := range m.sccs {
		m.sccs[id] = sccInfo{
			members: append([]graph.Node(nil), s.Members[id]...),
			out:     make(map[int32]int32),
			in:      make(map[int32]int32),
			cyclic:  s.Cyclic[id],
		}
	}
	for key, support := range s.EdgeSupport {
		m.sccs[key[0]].out[key[1]] = int32(support)
		m.sccs[key[1]].in[key[0]] = int32(support)
	}
	// Initial classes come from the batch compressor (windowed DP — far
	// cheaper than per-component BFS), as do the signature cardinalities.
	c := reach.CompressSCC(g, s)
	m.comp = c
	m.grCSR = nil
	m.dirtyGr = false
	m.classOfScc = make([]int32, len(m.sccs))
	for comp := range m.sccs {
		cls := int32(c.ClassOf(m.sccs[comp].members[0]))
		m.classOfScc[comp] = cls
		m.classSccs[cls] = append(m.classSccs[cls], int32(comp))
	}
	m.nextClass = int32(c.NumClasses())
	m.descCount, m.ancCount = reach.SetCounts(s)
}

// Graph returns the maintained graph; mutate only through Apply.
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// Compressed returns the current compression R(G), rebuilding the quotient
// lazily after updates.
func (m *Maintainer) Compressed() *reach.Compressed {
	if m.dirtyGr {
		m.rebuildGr()
	}
	return m.comp
}

// CompressedCSR returns the current compression together with a frozen CSR
// snapshot of its quotient graph Gr. This is the cheap post-Apply read-side
// hook: the quotient is rebuilt from the maintained component/class layers
// (never by recompressing G), and the freeze is cached, so calling it after
// every batch costs O(|Gr|) — not O(|G|). The returned CSR is immutable and
// safe to publish to concurrent readers.
func (m *Maintainer) CompressedCSR() (*reach.Compressed, *graph.CSR) {
	c := m.Compressed()
	if m.grCSR == nil {
		m.grCSR = c.Gr.Freeze()
	}
	return c, m.grCSR
}

// Apply applies ΔG and updates the maintained compression so that it
// equals R(G ⊕ ΔG).
func (m *Maintainer) Apply(batch []graph.Update) Stats {
	var st Stats

	aff := make(map[int32]bool)      // structurally changed components
	ancSeeds := make(map[int32]bool) // components whose ancestors' desc sets change
	descSeeds := make(map[int32]bool)
	var deletedCondEdges [][2]int32 // condensation edges removed this batch

	// Insertion-only batches admit a cheap exact pre-filter against the
	// start-of-batch compressed graph: reachability is monotone under
	// insertions, so if R(u) already reaches R(v) in Gr, inserting (u,v)
	// can never change the transitive closure, no matter how the rest of
	// the batch interleaves. This is the paper's redundant-update
	// reduction (incRCM step 1) evaluated on Gr, where it costs a BFS
	// over the tiny compressed graph instead of the condensation.
	insertOnly := true
	for _, up := range batch {
		if !up.Insert {
			insertOnly = false
			break
		}
	}
	var preGr *reach.Compressed
	if insertOnly && len(batch) > 0 {
		preGr = m.Compressed()
	}

	for _, up := range batch {
		if up.Insert {
			if preGr != nil && up.From != up.To {
				cu, cv := preGr.Rewrite(up.From, up.To)
				if grReachable(preGr.Gr, cu, cv) {
					if m.g.AddEdge(up.From, up.To) {
						st.EffectiveUpdates++
						st.RedundantUpdates++
						a, b := m.compOf[up.From], m.compOf[up.To]
						if a != b {
							m.addSupport(a, b)
						}
					}
					continue
				}
			}
			if !m.g.AddEdge(up.From, up.To) {
				continue
			}
			st.EffectiveUpdates++
			if m.applyInsert(up.From, up.To, aff, ancSeeds, descSeeds, &st) {
				st.RedundantUpdates++
			}
		} else {
			if !m.g.RemoveEdge(up.From, up.To) {
				continue
			}
			st.EffectiveUpdates++
			if m.applyDelete(up.From, up.To, aff, ancSeeds, descSeeds, &deletedCondEdges, &st) {
				st.RedundantUpdates++
			}
		}
	}
	if len(aff) == 0 && len(ancSeeds) == 0 && len(descSeeds) == 0 {
		return st
	}
	m.dirtyGr = true

	// Expand seeds into full cones over the condensation DAG, augmented
	// with this batch's deleted condensation edges so that components that
	// LOST reachability are covered as well.
	for _, c := range m.backwardCone(ancSeeds, deletedCondEdges) {
		aff[c] = true
	}
	for _, c := range m.forwardCone(descSeeds, deletedCondEdges) {
		aff[c] = true
	}

	affList := make([]int32, 0, len(aff))
	for c := range aff {
		if !m.sccs[c].dead {
			affList = append(affList, c)
		}
	}
	sort.Slice(affList, func(i, j int) bool { return affList[i] < affList[j] })
	st.AffComponents = len(affList)

	// regroup works within a visit budget; when the affected cones are so
	// large that batch recomputation is cheaper, it aborts and the
	// maintainer rebuilds from the graph (the practical face of Theorem
	// 6's unboundedness).
	if !m.regroup(affList) {
		m.initFromGraph()
	}
	return st
}

// applyInsert updates the SCC layer for an inserted edge and records
// affected-area seeds. It reports whether the update was redundant
// (closure unchanged).
func (m *Maintainer) applyInsert(u, v graph.Node, aff, ancSeeds, descSeeds map[int32]bool, st *Stats) bool {
	a, b := m.compOf[u], m.compOf[v]
	if a == b {
		if u == v && !m.sccs[a].cyclic {
			// Self-loop on a trivial component: it becomes cyclic, which
			// changes only the pair (u,u) — the component must leave its
			// trivial class.
			m.sccs[a].cyclic = true
			aff[a] = true
			return false
		}
		return true // intra-component edge: closure unchanged
	}
	already := m.sccReach(a, b)
	m.addSupport(a, b)
	if already {
		return true // a could already reach b
	}
	if m.sccReach(b, a) {
		// New cycle: merge every component on a path b ⇝ a.
		merged, safe := m.mergeCycle(a, b)
		st.Merges++
		aff[merged] = true
		if !safe {
			ancSeeds[merged] = true
			descSeeds[merged] = true
		} else {
			// Safe merges cannot split outside classes, but components
			// that could newly coarsen with the host's neighbors must
			// still be re-examined; keep the host's immediate frontier in
			// AFF (cheap) rather than the full cones.
			for f := range m.sccs[merged].in {
				aff[f] = true
			}
			for t := range m.sccs[merged].out {
				aff[t] = true
			}
		}
		return false
	}
	ancSeeds[a] = true
	descSeeds[b] = true
	aff[a] = true
	aff[b] = true
	return false
}

// applyDelete updates the SCC layer for a deleted edge; see applyInsert.
func (m *Maintainer) applyDelete(u, v graph.Node, aff, ancSeeds, descSeeds map[int32]bool, deletedCondEdges *[][2]int32, st *Stats) bool {
	a, b := m.compOf[u], m.compOf[v]
	if a == b {
		if u == v {
			// Self-loop removal.
			if len(m.sccs[a].members) == 1 {
				m.sccs[a].cyclic = false
				aff[a] = true
			}
			return len(m.sccs[a].members) > 1
		}
		if m.stillConnected(u, v, a) {
			return true // component survived intact: closure unchanged
		}
		parts := m.resplit(a)
		if len(parts) == 1 {
			return true // component survived intact
		}
		st.Splits++
		for _, p := range parts {
			aff[p] = true
			ancSeeds[p] = true
			descSeeds[p] = true
		}
		return false
	}
	left := m.decSupport(a, b)
	if left > 0 {
		return true // another member edge keeps the condensation edge
	}
	*deletedCondEdges = append(*deletedCondEdges, [2]int32{a, b})
	if m.sccReach(a, b) {
		// Alternate path: closure unchanged (see package doc; the DAG
		// property rules out all alternate paths depending on the deleted
		// edge).
		return true
	}
	ancSeeds[a] = true
	descSeeds[b] = true
	aff[a] = true
	aff[b] = true
	return false
}

// scratch returns the reusable visited slice, grown to the current
// component count.
func (m *Maintainer) scratch() []bool {
	if len(m.visited) < len(m.sccs) {
		m.visited = make([]bool, len(m.sccs)*2)
	}
	return m.visited
}

// sccReach reports whether component a reaches component b (a != b means
// via condensation edges; a == b means a is cyclic).
// sccReach searches bidirectionally, always expanding the smaller
// frontier: reach checks against a hub component then cost only the size
// of the small side.
func (m *Maintainer) sccReach(a, b int32) bool {
	if a == b {
		return m.sccs[a].cyclic
	}
	if len(m.visited2) < len(m.sccs) {
		m.visited2 = make([]byte, len(m.sccs)*2)
	}
	mark := m.visited2 // 0 unseen, 1 forward, 2 backward
	stamp := []int32{a, b}
	mark[a] = 1
	mark[b] = 2
	fwd := []int32{a}
	bwd := []int32{b}
	found := false
	for len(fwd) > 0 && len(bwd) > 0 && !found {
		if len(fwd) <= len(bwd) {
			var next []int32
			for _, x := range fwd {
				for c := range m.sccs[x].out {
					switch mark[c] {
					case 2:
						found = true
					case 0:
						mark[c] = 1
						stamp = append(stamp, c)
						next = append(next, c)
					}
				}
				if found {
					break
				}
			}
			fwd = next
		} else {
			var next []int32
			for _, x := range bwd {
				for c := range m.sccs[x].in {
					switch mark[c] {
					case 1:
						found = true
					case 0:
						mark[c] = 2
						stamp = append(stamp, c)
						next = append(next, c)
					}
				}
				if found {
					break
				}
			}
			bwd = next
		}
	}
	for _, c := range stamp {
		mark[c] = 0
	}
	return found
}

func (m *Maintainer) addSupport(a, b int32) {
	m.sccs[a].out[b]++
	m.sccs[b].in[a]++
}

func (m *Maintainer) decSupport(a, b int32) int32 {
	m.sccs[a].out[b]--
	m.sccs[b].in[a]--
	left := m.sccs[a].out[b]
	if left <= 0 {
		delete(m.sccs[a].out, b)
		delete(m.sccs[b].in, a)
	}
	return left
}

// mergeCycle merges all components on some path b ⇝ a (plus a and b) into
// one cyclic component and returns its id. Runs entirely on the
// condensation. The largest member absorbs the others (union-into-largest),
// so merging a small component into a giant SCC costs only the small
// side's degree — the common case when social graphs gain edges.
//
// The second result reports whether the merge is "safe": at most one
// merged part has edges from outside the merge set, and at most one has
// edges to outside. A safe merge cannot change the equivalence grouping of
// any component outside the merge set, so the affected area collapses to
// the merged component itself:
//
//   - No outside pair can SPLIT under any merge: equal ancestor/descendant
//     id-sets are transformed identically (merged ids are replaced by the
//     host id).
//   - An outside pair can COARSEN only if the two id-sets differed solely
//     inside the merge set. With a unique entry part q, every outside
//     ancestor sees the same within-merge reach (the parts reachable from
//     q), and with a unique exit part e, every outside descendant is
//     reached by the same parts (those reaching e). Either uniqueness
//     removes the respective source of intra-merge-set differences, so
//     differing-only-inside pairs cannot exist.
//
// The typical social-network insertion — a previously untouched fan pulled
// into the giant SCC — is safe, which is what keeps incRCM's per-update
// work constant-ish there.
func (m *Maintainer) mergeCycle(a, b int32) (int32, bool) {
	// Members = forward cone of b ∩ backward cone of a. The backward
	// search is restricted to the forward cone, so its cost is bounded by
	// the smaller region (an unrestricted backward search from a giant SCC
	// would visit every ancestor in the graph).
	fwd := m.forwardCone(map[int32]bool{b: true}, nil)
	inF := make(map[int32]bool, len(fwd))
	for _, c := range fwd {
		inF[c] = true
	}
	members := []int32{a}
	seen := map[int32]bool{a: true}
	stack := []int32{a}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for f := range m.sccs[x].in {
			if inF[f] && !seen[f] {
				seen[f] = true
				members = append(members, f)
				stack = append(stack, f)
			}
		}
	}

	// Host: the member with the largest footprint keeps its identity.
	host := members[0]
	hostCost := -1
	for _, c := range members {
		cost := len(m.sccs[c].members) + len(m.sccs[c].out) + len(m.sccs[c].in)
		if cost > hostCost {
			hostCost = cost
			host = c
		}
	}
	inMerge := make(map[int32]bool, len(members))
	for _, c := range members {
		inMerge[c] = true
	}

	// Safety analysis on the pre-merge adjacency.
	entries, exits := 0, 0
	for _, c := range members {
		hasEntry, hasExit := false, false
		for f := range m.sccs[c].in {
			if !inMerge[f] {
				hasEntry = true
				break
			}
		}
		for t := range m.sccs[c].out {
			if !inMerge[t] {
				hasExit = true
				break
			}
		}
		if hasEntry {
			entries++
		}
		if hasExit {
			exits++
		}
	}
	safe := entries <= 1 && exits <= 1

	h := &m.sccs[host]
	for _, c := range members {
		if c == host {
			continue
		}
		old := &m.sccs[c]
		h.members = append(h.members, old.members...)
		for _, v := range old.members {
			m.compOf[v] = host
		}
		for t, s := range old.out {
			if !inMerge[t] {
				h.out[t] += s
				m.sccs[t].in[host] += s
				delete(m.sccs[t].in, c)
			}
		}
		for f, s := range old.in {
			if !inMerge[f] {
				h.in[f] += s
				m.sccs[f].out[host] += s
				delete(m.sccs[f].out, c)
			}
		}
		m.removeFromClass(c)
		old.dead = true
		old.out, old.in, old.members = nil, nil, nil
		// The host's own references to the absorbed component become
		// internal edges.
		delete(h.out, c)
		delete(h.in, c)
	}
	h.cyclic = true
	m.removeFromClass(host)
	return host, safe
}

// stillConnected reports whether u still reaches v inside their (common)
// component's member subgraph. After deleting an intra-component edge
// (u,v), the component remains strongly connected iff this holds: paths
// leaving the component cannot return (the condensation is a DAG), so
// within-component reachability is decided by member edges alone, and any
// broken pair must involve the deleted edge's endpoints.
func (m *Maintainer) stillConnected(u, v graph.Node, comp int32) bool {
	if u == v {
		return true
	}
	if len(m.visitedNodes) < m.g.NumNodes() {
		m.visitedNodes = make([]bool, m.g.NumNodes()*2)
	}
	seen := m.visitedNodes
	seen[u] = true
	stamp := []graph.Node{u}
	stack := []graph.Node{u}
	found := false
	for len(stack) > 0 && !found {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range m.g.Successors(x) {
			if m.compOf[w] != comp || seen[w] {
				continue
			}
			if w == v {
				found = true
				break
			}
			seen[w] = true
			stamp = append(stamp, w)
			stack = append(stack, w)
		}
	}
	for _, w := range stamp {
		seen[w] = false
	}
	return found
}

// grReachable is a plain BFS over the (small) compressed graph.
func grReachable(gr *graph.Graph, u, v graph.Node) bool {
	seen := make([]bool, gr.NumNodes())
	stack := []graph.Node{}
	for _, w := range gr.Successors(u) {
		if w == v {
			return true
		}
		if !seen[w] {
			seen[w] = true
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range gr.Successors(x) {
			if w == v {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// resplit re-decomposes one component after an internal edge deletion,
// replacing it with the resulting components. Only the member subgraph is
// traversed. Returns the new component ids (a single id if intact).
func (m *Maintainer) resplit(a int32) []int32 {
	members := m.sccs[a].members
	idx := make(map[graph.Node]int32, len(members))
	for i, v := range members {
		idx[v] = int32(i)
	}
	// Local Tarjan on the member-induced subgraph.
	sub := graph.New(nil)
	l := sub.Labels().Intern("x")
	for range members {
		sub.AddNode(l)
	}
	for i, v := range members {
		for _, w := range m.g.Successors(v) {
			if j, ok := idx[w]; ok {
				sub.AddEdge(int32(i), j)
			}
		}
	}
	s := graph.Tarjan(sub)
	if s.NumComponents() == 1 {
		// Intact; cyclic status may still change (e.g. a 1-node component
		// cannot arise here since a!=b deletions are handled elsewhere).
		m.sccs[a].cyclic = s.Cyclic[0]
		return []int32{a}
	}

	// Allocate new component ids.
	parts := make([]int32, s.NumComponents())
	for i := range parts {
		id := int32(len(m.sccs))
		parts[i] = id
		m.sccs = append(m.sccs, sccInfo{
			out:    make(map[int32]int32),
			in:     make(map[int32]int32),
			cyclic: s.Cyclic[i],
		})
		m.classOfScc = append(m.classOfScc, -1)
		m.descCount = append(m.descCount, 0)
		m.ancCount = append(m.ancCount, 0)
	}
	for i, v := range members {
		id := parts[s.Comp[i]]
		m.compOf[v] = id
		m.sccs[id].members = append(m.sccs[id].members, v)
	}
	// Internal condensation edges between the parts.
	for key, support := range s.EdgeSupport {
		f, t := parts[key[0]], parts[key[1]]
		m.sccs[f].out[t] += int32(support)
		m.sccs[t].in[f] += int32(support)
	}
	// External edges: recount member edges crossing the old boundary.
	old := &m.sccs[a]
	for t, s := range old.out {
		delete(m.sccs[t].in, a)
		_ = s
	}
	for f, s := range old.in {
		delete(m.sccs[f].out, a)
		_ = s
	}
	for _, v := range members {
		cv := m.compOf[v]
		for _, w := range m.g.Successors(v) {
			if _, internal := idx[w]; internal {
				continue
			}
			cw := m.compOf[w]
			m.sccs[cv].out[cw]++
			m.sccs[cw].in[cv]++
		}
		for _, w := range m.g.Predecessors(v) {
			if _, internal := idx[w]; internal {
				continue
			}
			cw := m.compOf[w]
			m.sccs[cw].out[cv]++
			m.sccs[cv].in[cw]++
		}
	}
	m.removeFromClass(a)
	old.dead = true
	old.out, old.in, old.members = nil, nil, nil
	return parts
}

// forwardCone returns seeds plus everything reachable from them over the
// condensation (as a node list), additionally traversing the given
// (already removed) condensation edges.
func (m *Maintainer) forwardCone(seeds map[int32]bool, extra [][2]int32) []int32 {
	return m.cone(seeds, extra, true)
}

func (m *Maintainer) backwardCone(seeds map[int32]bool, extra [][2]int32) []int32 {
	return m.cone(seeds, extra, false)
}

func (m *Maintainer) cone(seeds map[int32]bool, extra [][2]int32, forward bool) []int32 {
	extraAdj := make(map[int32][]int32, len(extra))
	for _, e := range extra {
		if forward {
			extraAdj[e[0]] = append(extraAdj[e[0]], e[1])
		} else {
			extraAdj[e[1]] = append(extraAdj[e[1]], e[0])
		}
	}
	seen := m.scratch()
	var out []int32
	var stack []int32
	push := func(c int32) {
		if !seen[c] && !m.sccs[c].dead {
			seen[c] = true
			out = append(out, c)
			stack = append(stack, c)
		}
	}
	for c := range seeds {
		if !m.sccs[c].dead {
			push(c)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		adj := m.sccs[x].out
		if !forward {
			adj = m.sccs[x].in
		}
		for c := range adj {
			push(c)
		}
		for _, c := range extraAdj[x] {
			push(c)
		}
	}
	for _, c := range out {
		seen[c] = false
	}
	return out
}

func (m *Maintainer) removeFromClass(c int32) {
	cls := m.classOfScc[c]
	if cls < 0 {
		return
	}
	list := m.classSccs[cls]
	for i, x := range list {
		if x == c {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(m.classSccs, cls)
	} else {
		m.classSccs[cls] = list
	}
	m.classOfScc[c] = -1
}
