package increach

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/reach"
)

// sccSig is the signature of one condensation node: its strict descendant
// and ancestor component sets as sorted id slices. Slice representation
// keeps the cost proportional to the cone size (fan components have
// near-empty cones), unlike dims-sized bitsets.
type sccSig struct {
	desc, anc []int32
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hashIDs(ids []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range ids {
		h ^= uint64(uint32(x))
		h *= 1099511628211
	}
	return h
}

// regroup reassigns equivalence classes for the given (affected) live
// components; all other components keep their classes, which is sound
// because AFF contains every component whose signature changed (package
// doc). It works on a visit budget: if the total BFS work exceeds a small
// multiple of the condensation size, it aborts and returns false, in which
// case the caller falls back to batch recomputation (which is cheaper at
// that point). The state may be partially updated on abort; the fallback
// rebuilds everything from the graph.
func (m *Maintainer) regroup(affList []int32) bool {
	if len(affList) == 0 {
		return true
	}
	budget := 8*len(m.sccs) + 64*len(affList)
	visits := 0

	collect := func(c int32, forward bool) ([]int32, bool) {
		seen := m.scratch()
		var out []int32
		stack := []int32{c}
		seen[c] = true
		ok := true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			adj := m.sccs[x].out
			if !forward {
				adj = m.sccs[x].in
			}
			for t := range adj {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
					stack = append(stack, t)
					visits++
				}
			}
			if visits > budget {
				ok = false
				break
			}
		}
		seen[c] = false
		for _, t := range out {
			seen[t] = false
		}
		if !ok {
			return nil, false
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, true
	}

	sigOf := func(c int32) (sccSig, bool) {
		d, ok := collect(c, true)
		if !ok {
			return sccSig{}, false
		}
		a, ok := collect(c, false)
		if !ok {
			return sccSig{}, false
		}
		return sccSig{desc: d, anc: a}, true
	}

	// Phase 1: compute all AFF signatures within budget, before any state
	// mutation that regrouping itself performs.
	sigs := make(map[int32]sccSig, len(affList))
	for _, c := range affList {
		s, ok := sigOf(c)
		if !ok {
			return false
		}
		sigs[c] = s
	}

	// Phase 2: reassign classes.
	for _, c := range affList {
		m.removeFromClass(c)
	}
	var trivial []int32
	for _, c := range affList {
		s := sigs[c]
		m.descCount[c] = int32(len(s.desc))
		m.ancCount[c] = int32(len(s.anc))
		if m.sccs[c].cyclic {
			id := m.nextClass
			m.nextClass++
			m.classOfScc[c] = id
			m.classSccs[id] = []int32{c}
		} else {
			trivial = append(trivial, c)
		}
	}

	// Candidate index over surviving trivial classes, keyed by
	// (|desc|, |anc|) of the class — uniform across members, exact for
	// non-AFF components (their sets did not change). Lemma 7's rank
	// filter is subsumed by the cardinality pair.
	type key struct{ dc, ac int32 }
	candidates := make(map[key][]int32)
	for cls, members := range m.classSccs {
		rep := members[0]
		if m.sccs[rep].cyclic {
			continue
		}
		k := key{m.descCount[rep], m.ancCount[rep]}
		candidates[k] = append(candidates[k], cls)
	}
	for k := range candidates {
		sort.Slice(candidates[k], func(i, j int) bool { return candidates[k][i] < candidates[k][j] })
	}

	repSig := make(map[int32]sccSig)
	for _, c := range trivial {
		s := sigs[c]
		k := key{int32(len(s.desc)), int32(len(s.anc))}
		assigned := false
		for _, cls := range candidates[k] {
			rs, ok := repSig[cls]
			if !ok {
				var okSig bool
				rs, okSig = sigOf(m.classSccs[cls][0])
				if !okSig {
					return false
				}
				repSig[cls] = rs
			}
			if sameIDs(rs.desc, s.desc) && sameIDs(rs.anc, s.anc) {
				m.classOfScc[c] = cls
				m.classSccs[cls] = append(m.classSccs[cls], c)
				assigned = true
				break
			}
		}
		if !assigned {
			id := m.nextClass
			m.nextClass++
			m.classOfScc[c] = id
			m.classSccs[id] = []int32{c}
			candidates[k] = append(candidates[k], id)
			repSig[id] = s
		}
	}
	return true
}

// rebuildGr materializes the quotient graph and the Compressed view from
// the maintained component/class layers.
func (m *Maintainer) rebuildGr() {
	// Dense renumbering of live classes, ordered by class id.
	liveIDs := make([]int32, 0, len(m.classSccs))
	for cls := range m.classSccs {
		liveIDs = append(liveIDs, cls)
	}
	sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i] < liveIDs[j] })
	dense := make(map[int32]graph.Node, len(liveIDs))
	for i, cls := range liveIDs {
		dense[cls] = graph.Node(i)
	}

	numClasses := len(liveIDs)
	rawAdj := make([][]int32, numClasses)
	cyclic := make([]bool, numClasses)
	members := make([][]graph.Node, numClasses)
	for i, cls := range liveIDs {
		for _, c := range m.classSccs[cls] {
			if m.sccs[c].cyclic {
				cyclic[i] = true
			}
			for t := range m.sccs[c].out {
				rawAdj[i] = append(rawAdj[i], int32(dense[m.classOfScc[t]]))
			}
		}
	}
	classOf := make([]graph.Node, m.g.NumNodes())
	for v := 0; v < m.g.NumNodes(); v++ {
		cls := dense[m.classOfScc[m.compOf[v]]]
		classOf[v] = cls
		members[cls] = append(members[cls], graph.Node(v))
	}
	gr := reach.BuildQuotientGraph(rawAdj, cyclic)
	m.comp = reach.AssembleCompressed(gr, classOf, members, cyclic)
	m.grCSR = nil
	m.dirtyGr = false
}
