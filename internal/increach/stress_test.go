package increach

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/reach"
)

func TestStressIncrementalVsBatch(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.New(nil)
		for i := 0; i < n; i++ {
			g.AddNodeNamed("X")
		}
		m0 := rng.Intn(4 * n)
		for i := 0; i < m0; i++ {
			g.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
		}
		m := New(g)
		for round := 0; round < 6; round++ {
			var batch []graph.Update
			mode := rng.Intn(3)
			size := 1 + rng.Intn(7)
			switch mode {
			case 0:
				batch = gen.RandomBatch(rng, m.Graph(), size, 1.0)
			case 1:
				batch = gen.RandomBatch(rng, m.Graph(), size, 0.0)
			default:
				batch = gen.RandomBatch(rng, m.Graph(), size, 0.5)
			}
			m.Apply(batch)
			want := reach.Compress(m.Graph())
			got := m.Compressed()
			if got.Gr.NumNodes() != want.Gr.NumNodes() || got.Gr.NumEdges() != want.Gr.NumEdges() {
				t.Fatalf("seed %d round %d mode %d: quotient %v vs batch %v\nedges %v",
					seed, round, mode, got.Gr, want.Gr, m.Graph().EdgeList())
			}
			fwd := make(map[graph.Node]graph.Node)
			rev := make(map[graph.Node]graph.Node)
			for v := 0; v < n; v++ {
				gc, wc := got.ClassOf(graph.Node(v)), want.ClassOf(graph.Node(v))
				if c, ok := fwd[gc]; ok && c != wc {
					t.Fatalf("seed %d round %d: partition mismatch", seed, round)
				}
				if c, ok := rev[wc]; ok && c != gc {
					t.Fatalf("seed %d round %d: partition mismatch", seed, round)
				}
				fwd[gc] = wc
				rev[wc] = gc
			}
		}
	}
}
