package increach

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/queries"
	"repro/internal/reach"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNodeNamed("X")
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
	}
	return g
}

func randomBatch(rng *rand.Rand, g *graph.Graph, size int) []graph.Update {
	n := g.NumNodes()
	var batch []graph.Update
	edges := g.EdgeList()
	for i := 0; i < size; i++ {
		if rng.Intn(2) == 0 && len(edges) > 0 {
			e := edges[rng.Intn(len(edges))]
			batch = append(batch, graph.Deletion(e[0], e[1]))
		} else {
			batch = append(batch, graph.Insertion(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n))))
		}
	}
	return batch
}

// samePartitionAsBatch verifies the maintainer's classes form the same
// partition as batch recompression, and the quotients are structurally
// identical (same sizes; sizes suffice because both are the unique
// transitive reduction of the same class DAG up to class numbering, and
// preservation is checked separately).
func checkAgainstBatch(t *testing.T, m *Maintainer) {
	t.Helper()
	g := m.Graph()
	want := reach.Compress(g)
	got := m.Compressed()
	// Partition equality via pairwise class-membership comparison.
	n := g.NumNodes()
	fwd := make(map[graph.Node]graph.Node)
	rev := make(map[graph.Node]graph.Node)
	for v := 0; v < n; v++ {
		gc := got.ClassOf(graph.Node(v))
		wc := want.ClassOf(graph.Node(v))
		if c, ok := fwd[gc]; ok && c != wc {
			t.Fatalf("partition mismatch at node %d\nedges: %v", v, g.EdgeList())
		}
		if c, ok := rev[wc]; ok && c != gc {
			t.Fatalf("partition mismatch at node %d\nedges: %v", v, g.EdgeList())
		}
		fwd[gc] = wc
		rev[wc] = gc
	}
	if got.Gr.NumNodes() != want.Gr.NumNodes() || got.Gr.NumEdges() != want.Gr.NumEdges() {
		t.Fatalf("quotient size mismatch: inc %v, batch %v\nedges: %v",
			got.Gr, want.Gr, g.EdgeList())
	}
	if err := got.Gr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// checkPreservation verifies reachability answers on the maintained Gr.
func checkPreservation(t *testing.T, m *Maintainer) {
	t.Helper()
	g := m.Graph()
	c := m.Compressed()
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		desc := queries.Descendants(g, graph.Node(u))
		for v := 0; v < n; v++ {
			cu, cv := c.Rewrite(graph.Node(u), graph.Node(v))
			if got := queries.Reachable(c.Gr, cu, cv); got != desc[v] {
				t.Fatalf("QR(%d,%d): G says %v, maintained Gr says %v\nedges: %v",
					u, v, desc[v], got, g.EdgeList())
			}
		}
	}
}

func TestInsertAcrossDAG(t *testing.T) {
	// 0 -> 1, 2 -> 3; inserting 1 -> 2 changes reachability of everything.
	g := randomGraph(rand.New(rand.NewSource(0)), 4, 0)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	m := New(g)
	st := m.Apply([]graph.Update{graph.Insertion(1, 2)})
	if st.EffectiveUpdates != 1 || st.RedundantUpdates != 0 {
		t.Fatalf("stats: %+v", st)
	}
	checkAgainstBatch(t, m)
	checkPreservation(t, m)
}

func TestInsertRedundant(t *testing.T) {
	// 0 -> 1 -> 2 exists; inserting 0 -> 2 leaves the closure unchanged.
	g := randomGraph(rand.New(rand.NewSource(0)), 3, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	m := New(g)
	st := m.Apply([]graph.Update{graph.Insertion(0, 2)})
	if st.RedundantUpdates != 1 {
		t.Fatalf("redundant insert not detected: %+v", st)
	}
	checkAgainstBatch(t, m)
	checkPreservation(t, m)
}

func TestInsertFormsCycle(t *testing.T) {
	// Chain 0 -> 1 -> 2; inserting 2 -> 0 merges everything into one SCC.
	g := randomGraph(rand.New(rand.NewSource(0)), 3, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	m := New(g)
	st := m.Apply([]graph.Update{graph.Insertion(2, 0)})
	if st.Merges != 1 {
		t.Fatalf("expected a merge: %+v", st)
	}
	c := m.Compressed()
	if c.Gr.NumNodes() != 1 || !c.Gr.HasEdge(0, 0) {
		t.Fatalf("cycle should compress to one self-loop node: %v", c.Gr)
	}
	checkAgainstBatch(t, m)
	checkPreservation(t, m)
}

func TestDeleteBreaksCycle(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(0)), 3, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	m := New(g)
	st := m.Apply([]graph.Update{graph.Deletion(2, 0)})
	if st.Splits != 1 {
		t.Fatalf("expected a split: %+v", st)
	}
	checkAgainstBatch(t, m)
	checkPreservation(t, m)
}

func TestDeleteWithAlternatePathRedundant(t *testing.T) {
	// 0 -> 1 -> 2 and 0 -> 2: deleting 0 -> 2 is redundant.
	g := randomGraph(rand.New(rand.NewSource(0)), 3, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	m := New(g)
	st := m.Apply([]graph.Update{graph.Deletion(0, 2)})
	if st.RedundantUpdates != 1 {
		t.Fatalf("redundant delete not detected: %+v", st)
	}
	checkAgainstBatch(t, m)
	checkPreservation(t, m)
}

func TestSelfLoopToggle(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(0)), 2, 0)
	g.AddEdge(0, 1)
	m := New(g)
	m.Apply([]graph.Update{graph.Insertion(0, 0)})
	checkAgainstBatch(t, m)
	checkPreservation(t, m)
	m.Apply([]graph.Update{graph.Deletion(0, 0)})
	checkAgainstBatch(t, m)
	checkPreservation(t, m)
}

func TestIntraSCCSupportedDeletion(t *testing.T) {
	// SCC {0,1} with double connection 0->1 via two paths... use parallel
	// support: edges 0->1, 1->0, plus 0->2, 1->2 (support 2 on the
	// condensation edge). Deleting 0->2 keeps the condensation edge.
	g := randomGraph(rand.New(rand.NewSource(0)), 3, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	m := New(g)
	st := m.Apply([]graph.Update{graph.Deletion(0, 2)})
	if st.RedundantUpdates != 1 {
		t.Fatalf("supported deletion should be redundant: %+v", st)
	}
	checkAgainstBatch(t, m)
	checkPreservation(t, m)
}

func TestIncrementalMatchesBatchRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(3*n))
		m := New(g)
		for round := 0; round < 5; round++ {
			m.Apply(randomBatch(rng, m.Graph(), 1+rng.Intn(5)))
			want := reach.Compress(m.Graph())
			got := m.Compressed()
			if got.Gr.NumNodes() != want.Gr.NumNodes() || got.Gr.NumEdges() != want.Gr.NumEdges() {
				return false
			}
			// Partition check.
			fwd := make(map[graph.Node]graph.Node)
			rev := make(map[graph.Node]graph.Node)
			for v := 0; v < n; v++ {
				gc, wc := got.ClassOf(graph.Node(v)), want.ClassOf(graph.Node(v))
				if c, ok := fwd[gc]; ok && c != wc {
					return false
				}
				if c, ok := rev[wc]; ok && c != gc {
					return false
				}
				fwd[gc] = wc
				rev[wc] = gc
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalPreservationRandomDense(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(12)
		g := randomGraph(rng, n, 2*n)
		m := New(g)
		for round := 0; round < 4; round++ {
			m.Apply(randomBatch(rng, m.Graph(), 1+rng.Intn(6)))
			checkAgainstBatch(t, m)
			checkPreservation(t, m)
		}
	}
}

func TestNoOpBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 15, 30)
	m := New(g)
	before := m.Compressed().Gr.Size()
	st := m.Apply(nil)
	if st.EffectiveUpdates != 0 || st.AffComponents != 0 {
		t.Fatalf("empty batch did work: %+v", st)
	}
	if m.Compressed().Gr.Size() != before {
		t.Fatal("empty batch changed Gr")
	}
}

func TestStatsAffSmallForLocalChange(t *testing.T) {
	// A long chain plus an isolated pair: touching the pair must not put
	// the whole chain in AFF.
	g := graph.New(nil)
	for i := 0; i < 50; i++ {
		g.AddNodeNamed("X")
	}
	for i := 0; i < 40; i++ {
		g.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	m := New(g)
	st := m.Apply([]graph.Update{graph.Insertion(45, 46)})
	if st.AffComponents > 5 {
		t.Fatalf("AFF = %d for a local change", st.AffComponents)
	}
	checkAgainstBatch(t, m)
}
