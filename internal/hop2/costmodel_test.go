package hop2

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestGraphMemoryBytes pins the uniform memory model: per-node and
// per-edge contributions are exact, so the Fig. 12(d) comparison cannot
// drift silently.
func TestGraphMemoryBytes(t *testing.T) {
	g := graph.New(graph.NewLabels())
	for i := 0; i < 5; i++ {
		g.AddNodeNamed("L0")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	want := int64(5)*(2*24+4) + int64(3)*8
	if got := GraphMemoryBytes(g); got != want {
		t.Fatalf("GraphMemoryBytes = %d, want %d", got, want)
	}
	if GraphMemoryBytes(graph.New(graph.NewLabels())) != 0 {
		t.Fatal("empty graph must cost 0 bytes under the model")
	}
}

// TestProbeCost pins the probe model against the label structure: the
// cost of a cross-component pair is exactly |Lout(u)| + |Lin(v)|, and a
// same-component pair is free (the cyclic flag answers it).
func TestProbeCost(t *testing.T) {
	// A chain 0->1->2->3 with a 2-cycle {4,5} hanging off node 1.
	g := graph.New(graph.NewLabels())
	for i := 0; i < 6; i++ {
		g.AddNodeNamed("L0")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 4)
	idx := Build(g)

	for u := graph.Node(0); u < 6; u++ {
		for v := graph.Node(0); v < 6; v++ {
			got := idx.ProbeCost(u, v)
			a, b := idx.comp[u], idx.comp[v]
			if a == b {
				if got != 0 {
					t.Fatalf("ProbeCost(%d,%d) = %d for a same-component pair, want 0", u, v, got)
				}
				continue
			}
			if want := len(idx.lout[a]) + len(idx.lin[b]); got != want {
				t.Fatalf("ProbeCost(%d,%d) = %d, want |Lout|+|Lin| = %d", u, v, got, want)
			}
		}
	}
	// Nodes 4 and 5 share one SCC: the probe is free both ways.
	if idx.ProbeCost(4, 5) != 0 || idx.ProbeCost(5, 4) != 0 {
		t.Fatal("same-SCC probes must cost 0")
	}
}

// TestPeelBudget pins the gate arithmetic: the budget is the integer
// per-lane share of the sweep, monotone in graph size and antitone in
// lane count.
func TestPeelBudget(t *testing.T) {
	cases := []struct {
		nodes, edges, lanes, want int
	}{
		{64, 64, 64, 2},
		{1000, 3000, 64, 62},
		{1000, 3000, 1, 4000},
		{10, 5, 64, 0}, // tiny quotient: nothing peels, the sweep is free
	}
	for _, c := range cases {
		if got := PeelBudget(c.nodes, c.edges, c.lanes); got != c.want {
			t.Fatalf("PeelBudget(%d,%d,%d) = %d, want %d", c.nodes, c.edges, c.lanes, got, c.want)
		}
	}
	if PeelBudget(100, 200, 2) <= PeelBudget(100, 200, 64) {
		t.Fatal("budget must grow as lanes shrink")
	}
}

// TestPeelGateDifferential drives the gate end to end on a random DAG:
// whatever subset of pairs the gate peels, index answers must equal a
// direct traversal check, so the hybrid leaf can never change answers —
// only costs.
func TestPeelGateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.New(graph.NewLabels())
	const n = 120
	for i := 0; i < n; i++ {
		g.AddNodeNamed("L0")
	}
	for e := 0; e < 400; e++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-1-u)
		g.AddEdge(graph.Node(u), graph.Node(v))
	}
	idx := Build(g)
	c := g.Freeze()
	budget := PeelBudget(c.NumNodes(), c.NumEdges(), 64)
	peeled := 0
	for i := 0; i < 500; i++ {
		u := graph.Node(rng.Intn(n))
		v := graph.Node(rng.Intn(n))
		if idx.ProbeCost(u, v) > budget {
			continue
		}
		peeled++
		want := reachableBFS(c, u, v)
		if got := idx.Reachable(u, v); got != want {
			t.Fatalf("peeled lane QR(%d,%d): index says %v, traversal says %v", u, v, got, want)
		}
	}
	if peeled == 0 {
		t.Fatal("gate peeled nothing on a 120-node DAG; the budget model is broken")
	}
}

// reachableBFS is an independent nonempty-path oracle.
func reachableBFS(c *graph.CSR, u, v graph.Node) bool {
	seen := make([]bool, c.NumNodes())
	stack := append([]graph.Node(nil), c.Successors(u)...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		if x == v {
			return true
		}
		stack = append(stack, c.Successors(x)...)
	}
	return false
}
