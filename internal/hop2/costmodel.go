// Cost models over the 2-hop index: the memory model of the Fig. 12(d)
// comparison, and the probe-vs-sweep model that gates the hybrid batch
// leaf (a lane peels off to a label intersection only where the labels are
// cheaper than the lane's share of the 64-lane sweep).
package hop2

import "repro/internal/graph"

// GraphMemoryBytes estimates the in-memory footprint of a graph under a
// simple uniform cost model, used by the Fig. 12(d) memory comparison:
// each node costs two slice headers (out/in adjacency, 24 bytes each) plus
// a 4-byte label; each edge costs two 4-byte adjacency entries. The model
// is deliberately implementation-independent so that G, Gr and the 2-hop
// indexes are compared on equal terms.
func GraphMemoryBytes(g *graph.Graph) int64 {
	return int64(g.NumNodes())*(2*24+4) + int64(g.NumEdges())*8
}

// ProbeCost is the work of answering QR(u,v) from labels alone:
// Reachable(u,v) merges Lout(comp(u)) against Lin(comp(v)), so its cost is
// the sum of the two label lengths. Same-component pairs cost nothing (the
// answer is the cyclic flag). This is the per-lane price the hybrid batch
// leaf weighs against PeelBudget.
func (idx *Index) ProbeCost(u, v graph.Node) int {
	a, b := idx.comp[u], idx.comp[v]
	if a == b {
		return 0
	}
	return len(idx.lout[a]) + len(idx.lin[b])
}

// PeelBudget estimates one lane's share of a lanes-wide lane-mask sweep
// over an n-node, e-edge quotient: the sweep touches each pending node and
// edge once, word-parallel across all lanes, so a lane's amortized share
// is (n+e)/lanes. A lane whose ProbeCost is at or below this budget is
// cheaper to answer from the index than to carry through the sweep — the
// gate of the hybrid leaf. lanes must be >= 1 (callers pass a nonempty
// wave; there is deliberately no dead guard here).
func PeelBudget(nodes, edges, lanes int) int {
	return (nodes + edges) / lanes
}
