package hop2

import "repro/internal/graph"

// GraphMemoryBytes estimates the in-memory footprint of a graph under a
// simple uniform cost model, used by the Fig. 12(d) memory comparison:
// each node costs two slice headers (out/in adjacency, 24 bytes each) plus
// a 4-byte label; each edge costs two 4-byte adjacency entries. The model
// is deliberately implementation-independent so that G, Gr and the 2-hop
// indexes are compared on equal terms.
func GraphMemoryBytes(g *graph.Graph) int64 {
	return int64(g.NumNodes())*(2*24+4) + int64(g.NumEdges())*8
}
