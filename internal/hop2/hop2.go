// Package hop2 implements a 2-hop reachability labeling in the sense of
// Cohen, Halperin, Kaplan and Zwick [6]: every node v carries label sets
// Lout(v) (hubs v reaches) and Lin(v) (hubs reaching v), with
// reach(u,v) ⇔ Lout(u) ∩ Lin(v) ≠ ∅.
//
// Construction uses order-pruned BFS ("pruned landmark labeling") rather
// than Cohen et al.'s set-cover heuristic: nodes are processed in
// descending-degree order; the forward/backward searches from each hub are
// pruned wherever existing labels already answer the query. The label
// structure and query semantics are identical to the original 2-hop
// scheme; only the cover heuristic differs (see DESIGN.md substitutions).
// The index is built over the SCC condensation, so cyclic graphs are
// handled exactly, and the paper's point stands unchanged: the index can
// be built over the small compressed graph Gr where building it over G is
// infeasible (Fig. 12(d)).
package hop2

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// Index is a 2-hop reachability index over a fixed snapshot of a graph.
type Index struct {
	comp   []int32 // node -> condensation component
	cyclic []bool
	lout   [][]int32 // per component: sorted hub lists
	lin    [][]int32
}

// Build constructs the index for g.
func Build(g *graph.Graph) *Index { return BuildCSR(g.Freeze()) }

// BuildCSR constructs the index from a frozen CSR snapshot; the pruned
// BFS passes then run over the snapshot's condensation, whose adjacency
// rows are views into flat arrays.
func BuildCSR(c *graph.CSR) *Index {
	s := graph.TarjanCSR(c)
	n := s.NumComponents()
	idx := &Index{
		comp:   s.Comp,
		cyclic: s.Cyclic,
		lout:   make([][]int32, n),
		lin:    make([][]int32, n),
	}

	// Hub order: descending total condensation degree, a standard and
	// effective pruning order.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		da := len(s.Out[a]) + len(s.In[a])
		db := len(s.Out[b]) + len(s.In[b])
		if da != db {
			return db - da
		}
		return int(a - b)
	})

	visited := make([]bool, n)
	var stamp []int32 // visited components to reset
	for _, hub := range order {
		// Forward BFS: hub reaches w ⇒ hub ∈ Lin(w), unless already covered.
		stamp = stamp[:0]
		stack := []int32{hub}
		visited[hub] = true
		stamp = append(stamp, hub)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x != hub && idx.covered(hub, x) {
				continue
			}
			if x != hub {
				idx.lin[x] = append(idx.lin[x], hub)
			}
			for _, w := range s.Out[x] {
				if !visited[w] {
					visited[w] = true
					stamp = append(stamp, w)
					stack = append(stack, w)
				}
			}
		}
		for _, c := range stamp {
			visited[c] = false
		}

		// Backward BFS: w reaches hub ⇒ hub ∈ Lout(w).
		stamp = stamp[:0]
		stack = []int32{hub}
		visited[hub] = true
		stamp = append(stamp, hub)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x != hub && idx.covered(x, hub) {
				continue
			}
			if x != hub {
				idx.lout[x] = append(idx.lout[x], hub)
			}
			for _, w := range s.In[x] {
				if !visited[w] {
					visited[w] = true
					stamp = append(stamp, w)
					stack = append(stack, w)
				}
			}
		}
		for _, c := range stamp {
			visited[c] = false
		}

		// Hub labels itself on both sides so intersections through the hub
		// work for endpoints equal to the hub.
		idx.lout[hub] = append(idx.lout[hub], hub)
		idx.lin[hub] = append(idx.lin[hub], hub)
	}
	for comp := 0; comp < n; comp++ {
		slices.Sort(idx.lout[comp])
		slices.Sort(idx.lin[comp])
	}
	return idx
}

// covered reports whether reach(a,b) at component level is already implied
// by the labels assigned so far (the pruning test and the query primitive).
func (idx *Index) covered(a, b int32) bool {
	la, lb := idx.lout[a], idx.lin[b]
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] == lb[j]:
			return true
		case la[i] < lb[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Reachable answers the strict reachability query QR(u,v) from labels
// alone: O(|Lout(u)| + |Lin(v)|), no graph traversal.
func (idx *Index) Reachable(u, v graph.Node) bool {
	a, b := idx.comp[u], idx.comp[v]
	if a == b {
		return idx.cyclic[a]
	}
	return idx.covered(a, b)
}

// Entries returns the total number of label entries, the standard size
// measure for 2-hop covers.
func (idx *Index) Entries() int {
	n := 0
	for c := range idx.lout {
		n += len(idx.lout[c]) + len(idx.lin[c])
	}
	return n
}

// Parts exposes the index internals for serialization: the node→component
// map, the per-component cyclic flags, and the per-component sorted hub
// label lists. All returned slices are read-only views.
func (idx *Index) Parts() (comp []int32, cyclic []bool, lout, lin [][]int32) {
	return idx.comp, idx.cyclic, idx.lout, idx.lin
}

// FromParts reconstructs an index from the arrays exposed by Parts, taking
// ownership of them. It validates exactly what Reachable relies on for
// memory safety: consistent component counts across the four arrays and
// every comp entry in range. Hub ids inside lout/lin are checked against
// the component count; hub list sortedness (a query-correctness, not
// memory-safety, property) is trusted to the snapshot file's checksum.
func FromParts(comp []int32, cyclic []bool, lout, lin [][]int32) (*Index, error) {
	n := len(cyclic)
	if len(lout) != n || len(lin) != n {
		return nil, fmt.Errorf("hop2: FromParts: %d/%d label lists for %d components", len(lout), len(lin), n)
	}
	for v, c := range comp {
		if int(c) < 0 || int(c) >= n {
			return nil, fmt.Errorf("hop2: FromParts: node %d in unknown component %d", v, c)
		}
	}
	for c := 0; c < n; c++ {
		for _, h := range lout[c] {
			if int(h) < 0 || int(h) >= n {
				return nil, fmt.Errorf("hop2: FromParts: Lout(%d) names unknown hub %d", c, h)
			}
		}
		for _, h := range lin[c] {
			if int(h) < 0 || int(h) >= n {
				return nil, fmt.Errorf("hop2: FromParts: Lin(%d) names unknown hub %d", c, h)
			}
		}
	}
	return &Index{comp: comp, cyclic: cyclic, lout: lout, lin: lin}, nil
}

// MemoryBytes estimates the index footprint under the cost model of
// costmodel.go: 4 bytes per label entry plus two slice headers per
// component and the node→component map.
func (idx *Index) MemoryBytes() int64 {
	return int64(idx.Entries())*4 + int64(len(idx.lout))*48 + int64(len(idx.comp))*4
}
