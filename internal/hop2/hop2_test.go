package hop2

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/queries"
	"repro/internal/reach"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNodeNamed("X")
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
	}
	return g
}

func TestIndexChain(t *testing.T) {
	g := graph.New(nil)
	for i := 0; i < 5; i++ {
		g.AddNodeNamed("X")
	}
	for i := 0; i < 4; i++ {
		g.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	idx := Build(g)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			want := u < v
			if got := idx.Reachable(graph.Node(u), graph.Node(v)); got != want {
				t.Fatalf("Reachable(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestIndexCycle(t *testing.T) {
	g := graph.New(nil)
	for i := 0; i < 3; i++ {
		g.AddNodeNamed("X")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	idx := Build(g)
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if !idx.Reachable(graph.Node(u), graph.Node(v)) {
				t.Fatalf("cycle: Reachable(%d,%d) = false", u, v)
			}
		}
	}
}

func TestIndexAgainstBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(35)
		g := randomGraph(rng, n, rng.Intn(4*n))
		idx := Build(g)
		for trial := 0; trial < 60; trial++ {
			u := graph.Node(rng.Intn(n))
			v := graph.Node(rng.Intn(n))
			if idx.Reachable(u, v) != queries.Reachable(g, u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexOnCompressedGraph checks the paper's generic-compression claim
// for index structures: building the 2-hop index over Gr and querying
// rewritten queries gives the same answers as BFS on G.
func TestIndexOnCompressedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(3*n))
		c := reach.Compress(g)
		idx := Build(c.Gr)
		for q := 0; q < 50; q++ {
			u := graph.Node(rng.Intn(n))
			v := graph.Node(rng.Intn(n))
			cu, cv := c.Rewrite(u, v)
			if idx.Reachable(cu, cv) != queries.Reachable(g, u, v) {
				t.Fatalf("2-hop on Gr wrong for QR(%d,%d)", u, v)
			}
		}
	}
}

func TestIndexSmallerOnCompressed(t *testing.T) {
	// A graph with many equivalent nodes: index on Gr must be much smaller.
	g := graph.New(nil)
	for i := 0; i < 40; i++ {
		g.AddNodeNamed("X")
	}
	for i := 0; i < 30; i++ {
		g.AddEdge(graph.Node(i), 30)
		g.AddEdge(graph.Node(i), 31)
	}
	g.AddEdge(30, 32)
	g.AddEdge(31, 32)
	c := reach.Compress(g)
	big := Build(g)
	small := Build(c.Gr)
	if small.MemoryBytes() >= big.MemoryBytes() {
		t.Fatalf("2-hop(Gr)=%d >= 2-hop(G)=%d bytes", small.MemoryBytes(), big.MemoryBytes())
	}
}

func TestEntriesAndMemoryModel(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 20, 40)
	idx := Build(g)
	if idx.Entries() <= 0 {
		t.Fatal("no label entries")
	}
	if idx.MemoryBytes() <= 0 || GraphMemoryBytes(g) <= 0 {
		t.Fatal("memory model returned nonpositive size")
	}
}
