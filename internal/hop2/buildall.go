package hop2

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// BuildAll constructs one index per snapshot concurrently on a bounded
// worker pool (workers <= 0 means GOMAXPROCS) and returns them in input
// order. Nil snapshots yield nil indexes. This is the range-restricted
// build path of the sharded store: per-shard quotients are indexed
// independently, so index construction scales with the largest shard
// rather than with |Gr| of the whole graph.
func BuildAll(csrs []*graph.CSR, workers int) []*Index {
	out := make([]*Index, len(csrs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(csrs) {
		workers = len(csrs)
	}
	if workers <= 1 {
		for i, c := range csrs {
			if c != nil {
				out[i] = BuildCSR(c)
			}
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(csrs) {
					return
				}
				if csrs[i] != nil {
					out[i] = BuildCSR(csrs[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}
