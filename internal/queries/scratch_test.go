package queries

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestCSRQueriesAgreeWithGraphQueries: the scratch-based CSR overloads
// must answer exactly as the mutable-graph BFS variants on randomized
// graphs (cycles, self-loops, isolated nodes).
func TestCSRQueriesAgreeWithGraphQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(3*n))
		c := g.Freeze()
		s := NewScratch(0) // deliberately undersized: must grow on demand
		for i := 0; i < 120; i++ {
			u, v := graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n))
			want := Reachable(g, u, v)
			if got := ReachableCSR(c, s, u, v); got != want {
				t.Fatalf("trial %d: ReachableCSR(%d,%d) = %v, want %v", trial, u, v, got, want)
			}
			if got := ReachableBiCSR(c, s, u, v); got != want {
				t.Fatalf("trial %d: ReachableBiCSR(%d,%d) = %v, want %v", trial, u, v, got, want)
			}
		}
		// ReverseWithinCSR against ReverseWithin for assorted bounds.
		targets := make([]bool, n)
		for v := 0; v < n; v++ {
			targets[v] = rng.Intn(4) == 0
		}
		for _, bound := range []int{1, 2, 3, Unbounded} {
			want := ReverseWithin(g, targets, bound)
			got := ReverseWithinCSR(c, targets, bound)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d: ReverseWithinCSR bound %d differs at node %d", trial, bound, v)
				}
			}
		}
	}
}

// TestScratchEpochWraparound: after the uint32 epoch wraps, stale marks
// must not leak into fresh queries.
func TestScratchEpochWraparound(t *testing.T) {
	g := graph.New(nil)
	l := g.Labels().Intern("x")
	a := g.AddNode(l)
	b := g.AddNode(l)
	cNode := g.AddNode(l)
	g.AddEdge(a, b) // c is disconnected
	c := g.Freeze()
	s := NewScratch(3)
	if !ReachableCSR(c, s, a, b) {
		t.Fatal("a should reach b")
	}
	s.epoch = ^uint32(0) - 1 // two queries from wrapping
	for i := 0; i < 4; i++ {
		if ReachableCSR(c, s, a, cNode) {
			t.Fatalf("query %d around wraparound: a must not reach c", i)
		}
		if !ReachableBiCSR(c, s, a, b) {
			t.Fatalf("query %d around wraparound: a must reach b", i)
		}
	}
}

// buildAllocGraph returns a social-like random graph and query pairs for
// the allocation-regression guards.
func buildAllocGraph(n, m int) (*graph.CSR, [][2]graph.Node) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, n, m)
	pairs := make([][2]graph.Node, 64)
	for i := range pairs {
		pairs[i] = [2]graph.Node{graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n))}
	}
	return g.Freeze(), pairs
}

// TestReachableCSRZeroAllocs pins CSR BFS with a warm scratch at exactly
// zero allocations per query — the property the compressed-graph query
// path depends on under load.
func TestReachableCSRZeroAllocs(t *testing.T) {
	c, pairs := buildAllocGraph(800, 3200)
	s := NewScratch(c.NumNodes())
	// Warm: let the queue backing arrays reach steady-state capacity.
	for _, p := range pairs {
		ReachableCSR(c, s, p[0], p[1])
	}
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		ReachableCSR(c, s, p[0], p[1])
	}); avg != 0 {
		t.Fatalf("ReachableCSR with warm scratch: %v allocs/op, want 0", avg)
	}
}

// TestReachableBiCSRZeroAllocs is the bidirectional counterpart.
func TestReachableBiCSRZeroAllocs(t *testing.T) {
	c, pairs := buildAllocGraph(800, 3200)
	s := NewScratch(c.NumNodes())
	for _, p := range pairs {
		ReachableBiCSR(c, s, p[0], p[1])
	}
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		ReachableBiCSR(c, s, p[0], p[1])
	}); avg != 0 {
		t.Fatalf("ReachableBiCSR with warm scratch: %v allocs/op, want 0", avg)
	}
}
