package queries

import (
	"math/bits"
	"slices"

	"repro/internal/graph"
)

// This file implements the vectorized batch read path: a word-parallel
// multi-source BFS that answers up to 64 reachability queries (or computes
// up to 64 descendant/ancestor sets) in a single traversal of a CSR
// snapshot. Every node carries a 64-bit lane mask — one bit per query — so
// frontier expansion does the bookkeeping of all queries in a handful of
// word operations per edge instead of one full traversal per query. The
// semantics of each lane are exactly those of the scalar functions
// (nonempty paths: a source reaches itself only via a cycle), which the
// differential tests in this package and in internal/store pin down.

// MaxBatch is the lane capacity of the batch engine: one bit of a 64-bit
// mask per query. Callers with larger batches chunk into waves of MaxBatch.
const MaxBatch = 64

// BatchScratch is reusable state for the lane-mask BFS. Like Scratch, its
// per-node arrays are epoch-stamped, so a warm BatchScratch makes repeated
// batches over one snapshot allocate nothing (result-slice growth aside).
// A BatchScratch is owned by one goroutine at a time.
//
// The zero-cost composition surface is Begin / Seed / Target / RunForward /
// RunBackward plus Reached and Lanes, which the sharded routing layer uses
// to batch its summary hop; BatchReachable, BatchDescendants and
// BatchAncestors are the packaged forms.
type BatchScratch struct {
	stamp   []uint32 // per node: epoch at which mask/pend became valid
	mask    []uint64 // lanes that reached the node by a nonempty path
	pend    []uint64 // lanes reached but not yet expanded from the node
	tstamp  []uint32 // per node: epoch at which tmask became valid
	tmask   []uint64 // lanes for which the node is a target
	epoch   uint32
	queue   []graph.Node
	touched []graph.Node // nodes with a nonzero mask this epoch
	seeded  uint64       // union of seeded lanes
	hasTgt  bool         // at least one Target call this epoch

	// Bidirectional state (BatchReachable only): backward masks mirror the
	// forward ones, smask marks lane sources the way tmask marks targets.
	bstamp []uint32
	bmask  []uint64
	bpend  []uint64
	sstamp []uint32
	smask  []uint64
	bqueue []graph.Node

	// words/bwords are the forward/backward pending bitmaps of the
	// topological sweep (BatchReachableTopo); the sweeps clear every bit
	// they set, so both are all-zero between waves and Begin never touches
	// them.
	words  []uint64
	bwords []uint64
	tids   []graph.Node // sorted target ids of the current topo wave
	sids   []graph.Node // sorted source ids of the current topo wave
}

// NewBatchScratch returns a BatchScratch pre-sized for an n-node graph.
// Scratches grow on demand, so sizing is an optimization, not a
// requirement.
func NewBatchScratch(n int) *BatchScratch {
	return &BatchScratch{
		stamp:  make([]uint32, n),
		mask:   make([]uint64, n),
		pend:   make([]uint64, n),
		tstamp: make([]uint32, n),
		tmask:  make([]uint64, n),
		bstamp: make([]uint32, n),
		bmask:  make([]uint64, n),
		bpend:  make([]uint64, n),
		sstamp: make([]uint32, n),
		smask:  make([]uint64, n),
		queue:  make([]graph.Node, 0, 64),
		bqueue: make([]graph.Node, 0, 64),
	}
}

// Begin readies the scratch for one batch over an n-node graph: it grows
// the arrays if needed, advances the epoch (zeroing only on wraparound),
// and clears the seed/target/queue state of the previous batch.
func (bs *BatchScratch) Begin(n int) {
	if len(bs.stamp) < n {
		bs.stamp = make([]uint32, n)
		bs.mask = make([]uint64, n)
		bs.pend = make([]uint64, n)
		bs.tstamp = make([]uint32, n)
		bs.tmask = make([]uint64, n)
		bs.bstamp = make([]uint32, n)
		bs.bmask = make([]uint64, n)
		bs.bpend = make([]uint64, n)
		bs.sstamp = make([]uint32, n)
		bs.smask = make([]uint64, n)
		bs.epoch = 0
	}
	bs.epoch++
	if bs.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		clear(bs.stamp)
		clear(bs.tstamp)
		clear(bs.bstamp)
		clear(bs.sstamp)
		bs.epoch = 1
	}
	bs.queue = bs.queue[:0]
	bs.bqueue = bs.bqueue[:0]
	bs.touched = bs.touched[:0]
	bs.seeded = 0
	bs.hasTgt = false
}

// touch validates node v's mask/pend slots for the current epoch.
func (bs *BatchScratch) touch(v graph.Node) {
	if bs.stamp[v] != bs.epoch {
		bs.stamp[v] = bs.epoch
		bs.mask[v] = 0
		bs.pend[v] = 0
	}
}

// Seed registers v as a source for the given lanes: the next Run expands
// v's row under those lanes without marking v itself reached (nonempty-path
// semantics). Seeding the same node repeatedly accumulates lanes.
func (bs *BatchScratch) Seed(v graph.Node, lanes uint64) {
	if lanes == 0 {
		return
	}
	bs.touch(v)
	if bs.pend[v] == 0 {
		bs.queue = append(bs.queue, v)
	}
	bs.pend[v] |= lanes
	bs.seeded |= lanes
}

// Target registers v as the target of the given lanes: a lane is reported
// done by Run as soon as it reaches one of its targets, after which it
// stops propagating. Lanes without targets run to frontier exhaustion.
func (bs *BatchScratch) Target(v graph.Node, lanes uint64) {
	if lanes == 0 {
		return
	}
	if bs.tstamp[v] != bs.epoch {
		bs.tstamp[v] = bs.epoch
		bs.tmask[v] = 0
	}
	bs.tmask[v] |= lanes
	bs.hasTgt = true
}

// RunForward runs the seeded lane BFS over successor rows and returns the
// lanes that reached one of their targets.
func (bs *BatchScratch) RunForward(c *graph.CSR) uint64 { return bs.run(c, true) }

// RunBackward runs the seeded lane BFS over predecessor rows (ancestor
// direction) and returns the lanes that reached one of their targets.
func (bs *BatchScratch) RunBackward(c *graph.CSR) uint64 { return bs.run(c, false) }

// run is the lane-mask BFS core. Each queue entry is a node with pending
// lanes; expanding it ORs those lanes into every neighbor, re-queueing a
// neighbor only when it gains lanes it has not seen. A lane that hits one
// of its targets enters done and is masked out of all further expansion;
// when every seeded lane is done the traversal stops early.
func (bs *BatchScratch) run(c *graph.CSR, fwd bool) uint64 {
	epoch := bs.epoch
	var done uint64
	q := bs.queue
	for i := 0; i < len(q); i++ {
		x := q[i]
		m := bs.pend[x] &^ done
		bs.pend[x] = 0
		if m == 0 {
			continue
		}
		var row []graph.Node
		if fwd {
			row = c.Successors(x)
		} else {
			row = c.Predecessors(x)
		}
		for _, w := range row {
			if bs.stamp[w] != epoch {
				bs.stamp[w] = epoch
				bs.mask[w] = 0
				bs.pend[w] = 0
			}
			add := m &^ bs.mask[w]
			if add == 0 {
				continue
			}
			if bs.mask[w] == 0 {
				bs.touched = append(bs.touched, w)
			}
			bs.mask[w] |= add
			if bs.hasTgt && bs.tstamp[w] == epoch {
				if hit := add & bs.tmask[w]; hit != 0 {
					done |= hit
					if done == bs.seeded {
						bs.queue = q
						return done
					}
					add &^= done
					if add == 0 {
						continue
					}
					m &^= done
				}
			}
			if bs.pend[w] == 0 {
				q = append(q, w)
			}
			bs.pend[w] |= add
		}
	}
	bs.queue = q
	return done
}

// Reached returns the nodes reached by at least one lane during the last
// Run, in traversal order. The slice is valid until the next Begin.
func (bs *BatchScratch) Reached() []graph.Node { return bs.touched }

// Lanes returns the lane mask of v after a Run: bit i is set iff lane i
// reached v by a nonempty path. Note that lanes stop propagating once they
// hit a target, so masks are complete only for target-free lanes.
func (bs *BatchScratch) Lanes(v graph.Node) uint64 {
	if bs.stamp[v] != bs.epoch {
		return 0
	}
	return bs.mask[v]
}

// checkBatch validates a batch's lane count against MaxBatch.
func checkBatch(k int) {
	if k > MaxBatch {
		panic("queries: batch larger than MaxBatch lanes; chunk into waves of 64")
	}
}

// BatchReachable answers the reachability queries QR(us[i], vs[i]),
// i < len(us) <= MaxBatch, in one BIDIRECTIONAL lane-mask BFS over c,
// writing the answers to out[:len(us)]. Answers are identical to len(us)
// scalar ReachableBiCSR calls. Like the scalar BIBFS, each round expands
// the smaller of the two frontiers — a forward one carrying every lane's
// source cone and a backward one carrying every lane's target cone — and a
// lane finishes the moment its cones meet at any node (or an endpoint is
// hit directly); finished lanes are masked out of all further expansion.
// The traversal cost is shared word-parallel across all lanes.
func BatchReachable(c *graph.CSR, bs *BatchScratch, us, vs []graph.Node, out []bool) {
	k := len(us)
	checkBatch(k)
	if len(vs) != k || len(out) < k {
		panic("queries: BatchReachable: us/vs/out length mismatch")
	}
	n := c.NumNodes()
	bs.Begin(n)
	epoch := bs.epoch
	all := uint64(0)
	if k == 64 {
		all = ^uint64(0)
	} else {
		all = 1<<uint(k) - 1
	}
	// Mark sources (smask) and targets (tmask), and queue the seeds of both
	// directions; seeds carry pending lanes but are not marked reached, so
	// only nonempty paths count.
	for i := 0; i < k; i++ {
		lane := uint64(1) << uint(i)
		u, v := us[i], vs[i]
		if bs.sstamp[u] != epoch {
			bs.sstamp[u] = epoch
			bs.smask[u] = 0
		}
		bs.smask[u] |= lane
		if bs.tstamp[v] != epoch {
			bs.tstamp[v] = epoch
			bs.tmask[v] = 0
		}
		bs.tmask[v] |= lane
		bs.touch(u)
		if bs.pend[u] == 0 {
			bs.queue = append(bs.queue, u)
		}
		bs.pend[u] |= lane
		if bs.bstamp[v] != epoch {
			bs.bstamp[v] = epoch
			bs.bmask[v] = 0
			bs.bpend[v] = 0
		}
		if bs.bpend[v] == 0 {
			bs.bqueue = append(bs.bqueue, v)
		}
		bs.bpend[v] |= lane
	}

	var done uint64
	fq, bq := bs.queue, bs.bqueue
	fLo, bLo := 0, 0
	for done != all && (fLo < len(fq) || bLo < len(bq)) {
		if bLo >= len(bq) || (fLo < len(fq) && len(fq)-fLo <= len(bq)-bLo) {
			// Forward level: expand successor rows; a lane meets when it
			// newly marks a node its backward cone (or target) already
			// holds.
			hi := len(fq)
			for ; fLo < hi; fLo++ {
				x := fq[fLo]
				m := bs.pend[x] &^ done
				bs.pend[x] = 0
				if m == 0 {
					continue
				}
				for _, w := range c.Successors(x) {
					if bs.stamp[w] != epoch {
						bs.stamp[w] = epoch
						bs.mask[w] = 0
						bs.pend[w] = 0
					}
					add := m &^ bs.mask[w]
					if add == 0 {
						continue
					}
					bs.mask[w] |= add
					opp := uint64(0)
					if bs.tstamp[w] == epoch {
						opp |= bs.tmask[w]
					}
					if bs.bstamp[w] == epoch {
						opp |= bs.bmask[w]
					}
					if hit := add & opp; hit != 0 {
						done |= hit
						if done == all {
							bs.queue, bs.bqueue = fq, bq
							goto finish
						}
						add &^= done
						if add == 0 {
							continue
						}
						m &^= done
					}
					if bs.pend[w] == 0 {
						fq = append(fq, w)
					}
					bs.pend[w] |= add
				}
			}
		} else {
			// Backward level: expand predecessor rows; a lane meets when it
			// newly marks a node its forward cone (or source) already holds.
			hi := len(bq)
			for ; bLo < hi; bLo++ {
				x := bq[bLo]
				m := bs.bpend[x] &^ done
				bs.bpend[x] = 0
				if m == 0 {
					continue
				}
				for _, w := range c.Predecessors(x) {
					if bs.bstamp[w] != epoch {
						bs.bstamp[w] = epoch
						bs.bmask[w] = 0
						bs.bpend[w] = 0
					}
					add := m &^ bs.bmask[w]
					if add == 0 {
						continue
					}
					bs.bmask[w] |= add
					opp := uint64(0)
					if bs.sstamp[w] == epoch {
						opp |= bs.smask[w]
					}
					if bs.stamp[w] == epoch {
						opp |= bs.mask[w]
					}
					if hit := add & opp; hit != 0 {
						done |= hit
						if done == all {
							bs.queue, bs.bqueue = fq, bq
							goto finish
						}
						add &^= done
						if add == 0 {
							continue
						}
						m &^= done
					}
					if bs.bpend[w] == 0 {
						bq = append(bq, w)
					}
					bs.bpend[w] |= add
				}
			}
		}
	}
	bs.queue, bs.bqueue = fq, bq
finish:
	for i := 0; i < k; i++ {
		out[i] = done>>uint(i)&1 != 0
	}
}

// HubDesc supplies memoized descendant reach-sets for hub nodes of a
// topologically ordered CSR: Desc(v) returns the bitset words of the nodes
// reachable from v by a nonempty path (bit w of word w/64 set iff v
// reaches w), or nil when v has no cached row. Implementations must answer
// for the SAME snapshot the sweep traverses — a row from another epoch is
// a wrong answer, which is why the store keeps its cache on the snapshot
// itself (see internal/store: a cached reach-set never outlives its
// epoch).
type HubDesc interface {
	Desc(v graph.Node) []uint64
}

// BatchReachableTopo answers up to MaxBatch reachability queries on a
// TOPOLOGICALLY ORDERED CSR — every non-self-loop edge (u,v) has u < v, as
// produced by graph.ReorderTopoPerm; reachability quotients qualify, being
// DAGs with self-loops on cyclic classes. It interleaves two strictly
// in-order sweeps, node for node: a forward sweep draining a pending word
// bitmap in ascending id (computing every lane's descendant cone) and a
// backward sweep draining in descending id (computing ancestor cones). In
// topological order all arrivals at a node precede its own expansion, so
// each sweep expands every node EXACTLY once — no frontier queue, no
// re-expansion, a couple of word ORs per edge for all 64 lanes together.
// Whichever sweep drains first decides every remaining lane (lane i is
// true iff mask[vs[i]], resp. bmask[us[i]], carries it), so a wave costs
// about twice the CHEAPER cone side — the lane-parallel analogue of the
// scalar BIBFS advantage — and lanes whose cones meet mid-sweep finish
// immediately. Answers equal len(us) scalar ReachableBiCSR calls. The
// ordering precondition is NOT checked here (it would cost O(|E|));
// callers own it, tests pin it.
func BatchReachableTopo(c *graph.CSR, bs *BatchScratch, us, vs []graph.Node, out []bool) {
	BatchReachableTopoHub(c, bs, nil, us, vs, out)
}

// BatchReachableTopoHub is BatchReachableTopo with a hub reach-set cache:
// a lane whose source has a cached row is answered O(1) at seed time, and
// when the forward sweep pops a cached node x it settles every lane whose
// target lies in desc(x) as true and expands x for NO lane at all — a lane
// whose target is outside desc(x) cannot meet below x (a meet w with
// w ∈ desc(x) ∩ anc(target) would put the target inside desc(x)), so the
// whole subtree is pruned soundly. On deep quotients this collapses the
// sweep at exactly the high-fanout nodes that make it expensive. It
// returns the lanes answered from rows and the prune events, for the
// scheduler's hit-rate accounting. A nil hub is BatchReachableTopo.
func BatchReachableTopoHub(c *graph.CSR, bs *BatchScratch, hub HubDesc, us, vs []graph.Node, out []bool) (hubLanes, hubPrunes int) {
	k := len(us)
	checkBatch(k)
	if len(vs) != k || len(out) < k {
		panic("queries: BatchReachableTopo: us/vs/out length mismatch")
	}
	if k == 0 {
		return
	}
	n := c.NumNodes()
	bs.Begin(n)
	epoch := bs.epoch
	bs.growBitmaps(n)
	fw, bw := bs.words, bs.bwords

	// O(1) prefilter, courtesy of the topological order: a nonempty path
	// strictly increases the node id (self-loops aside), so v < u is
	// immediately false and v == u reduces to a self-loop probe (cyclic
	// classes carry one). Only the surviving lanes seed the sweeps.
	// Tiny graphs (collapsed quotients: a giant SCC compresses to a few
	// classes) skip the whole bidirectional apparatus — the forward drain
	// finishes in a handful of pops and per-lane constants dominate.
	tiny := n <= topoTinyCutoff
	var live uint64
	fLo, fHi := n>>6, 0
	bLo, bHi := n>>6, 0
	for i := 0; i < k; i++ {
		u, v := us[i], vs[i]
		if v < u {
			out[i] = false
			continue
		}
		if v == u {
			out[i] = c.HasEdge(u, u)
			continue
		}
		if hub != nil {
			if row := hub.Desc(u); row != nil {
				out[i] = row[int(v)>>6]>>uint(v&63)&1 != 0
				hubLanes++
				continue
			}
		}
		lane := uint64(1) << uint(i)
		live |= lane
		bs.touch(u)
		bs.pend[u] |= lane
		wu := int(u) >> 6
		fw[wu] |= 1 << uint(u&63)
		if wu < fLo {
			fLo = wu
		}
		if wu > fHi {
			fHi = wu
		}
		if tiny {
			continue
		}
		if bs.sstamp[u] != epoch {
			bs.sstamp[u] = epoch
			bs.smask[u] = 0
		}
		bs.smask[u] |= lane
		if bs.tstamp[v] != epoch {
			bs.tstamp[v] = epoch
			bs.tmask[v] = 0
		}
		bs.tmask[v] |= lane
		if bs.bstamp[v] != epoch {
			bs.bstamp[v] = epoch
			bs.bmask[v] = 0
			bs.bpend[v] = 0
		}
		bs.bpend[v] |= lane
		wv := int(v) >> 6
		bw[wv] |= 1 << uint(v&63)
		if wv < bLo {
			bLo = wv
		}
		if wv > bHi {
			bHi = wv
		}
	}
	if live == 0 {
		return
	}
	if tiny {
		bs.drainForward(c, fLo, fHi)
		for i := 0; i < k; i++ {
			if live>>uint(i)&1 != 0 {
				v := vs[i]
				out[i] = bs.stamp[v] == epoch && bs.mask[v]>>uint(i)&1 != 0
			}
		}
		return
	}
	// Sorted target ids (ascending) and source ids (descending): as the
	// forward sweep's pop position passes a target id, that target's mask
	// is final and its lanes settle; mirror for the backward sweep passing
	// source ids. Lanes also settle on a cone meet. The wave stops as soon
	// as every live lane is settled, so its cost tracks the cheaper side
	// of the narrowest windows rather than full cones.
	tids := bs.tids[:0]
	sids := bs.sids[:0]
	for i := 0; i < k; i++ {
		if live>>uint(i)&1 != 0 {
			tids = append(tids, vs[i])
			sids = append(sids, us[i])
		}
	}
	insertionSort(tids)
	insertionSort(sids)
	bs.tids, bs.sids = tids, sids

	var settled, ans uint64
	fwi, bwi := fLo, bHi
	tptr := 0
	sptr := len(sids) - 1
	fDrained, bDrained := false, false
	// Cost-balanced alternation (the lane analogue of scalar BIBFS's
	// smaller-frontier rule): each iteration advances the sweep that has
	// consumed less work so far, measured in edges expanded, so the wave's
	// total cost tracks ~2x the CHEAPER cone side even when the other side
	// fans out through hubs.
	fCost, bCost := 0, 0
	for settled != live {
		if fCost > bCost {
			goto backward
		}
		// One forward step: pop the lowest pending node and expand its
		// successors (all ≥ it, so its lane set is final at pop time).
		for fwi <= fHi && fw[fwi] == 0 {
			fwi++
		}
		if fwi > fHi {
			fDrained = true
			break
		}
		{
			b := bits.TrailingZeros64(fw[fwi])
			fw[fwi] &^= 1 << uint(b)
			x := graph.Node(fwi<<6 + b)
			// Retire every target the sweep has passed: its reached-lane
			// set can no longer change.
			for tptr < len(tids) && tids[tptr] <= x {
				t := tids[tptr]
				tptr++
				lanes := bs.tmask[t] &^ settled
				if lanes != 0 {
					if bs.stamp[t] == epoch {
						ans |= lanes & bs.mask[t]
					}
					settled |= lanes
				}
			}
			if settled == live {
				break
			}
			m := (bs.pend[x] | bs.mask[x]) &^ settled
			bs.pend[x] = 0
			// Hub prune: a cached row decides x's whole subtree for every
			// lane that reached x. Every lane in m got here by a nonempty
			// path (seeded lanes at cached nodes were peeled at prefilter),
			// so target-in-row lanes settle true; the rest cannot meet below
			// x (see BatchReachableTopoHub) and are dropped from x's
			// expansion without settling — other paths may still decide
			// them. Either way x's successors are never walked.
			if m != 0 && hub != nil {
				if row := hub.Desc(x); row != nil {
					hubPrunes++
					var hit uint64
					for mm := m; mm != 0; mm &= mm - 1 {
						i := bits.TrailingZeros64(mm)
						v := vs[i]
						if row[int(v)>>6]>>uint(v&63)&1 != 0 {
							hit |= 1 << uint(i)
						}
					}
					ans |= hit
					settled |= hit
					m = 0
					fCost -= c.OutDegree(x) // pop charged below; row walk is O(lanes)
				}
			}
			fCost += 1 + c.OutDegree(x)
			if m != 0 {
				for _, y := range c.Successors(x) {
					if bs.stamp[y] != epoch {
						bs.stamp[y] = epoch
						bs.mask[y] = 0
						bs.pend[y] = 0
					}
					add := m &^ bs.mask[y]
					if add == 0 {
						continue
					}
					bs.mask[y] |= add
					// A lane meets when it marks a node its backward cone
					// already holds.
					if bs.bstamp[y] == epoch {
						if hit := add & bs.bmask[y]; hit != 0 {
							ans |= hit
							settled |= hit
							m &^= hit
							if m == 0 {
								break
							}
						}
					}
					if y > x { // self-loops resolved in place
						wy := int(y) >> 6
						fw[wy] |= 1 << uint(y&63)
						if wy > fHi {
							fHi = wy
						}
					}
				}
			}
		}
		if settled == live {
			break
		}
		continue

		// One backward step: pop the highest pending node and expand its
		// predecessors (all ≤ it); retire every source passed.
	backward:
		for bwi >= bLo && bw[bwi] == 0 {
			bwi--
		}
		if bwi < bLo {
			bDrained = true
			break
		}
		{
			b := 63 - bits.LeadingZeros64(bw[bwi])
			bw[bwi] &^= 1 << uint(b)
			x := graph.Node(bwi<<6 + b)
			for sptr >= 0 && sids[sptr] >= x {
				s := sids[sptr]
				sptr--
				lanes := bs.smask[s] &^ settled
				if lanes != 0 {
					if bs.bstamp[s] == epoch {
						ans |= lanes & bs.bmask[s]
					}
					settled |= lanes
				}
			}
			if settled == live {
				break
			}
			m := (bs.bpend[x] | bs.bmask[x]) &^ settled
			bs.bpend[x] = 0
			bCost += 1 + c.InDegree(x)
			if m != 0 {
				for _, y := range c.Predecessors(x) {
					if bs.bstamp[y] != epoch {
						bs.bstamp[y] = epoch
						bs.bmask[y] = 0
						bs.bpend[y] = 0
					}
					add := m &^ bs.bmask[y]
					if add == 0 {
						continue
					}
					bs.bmask[y] |= add
					if bs.stamp[y] == epoch {
						if hit := add & bs.mask[y]; hit != 0 {
							ans |= hit
							settled |= hit
							m &^= hit
							if m == 0 {
								break
							}
						}
					}
					if y < x { // self-loops resolved in place
						wy := int(y) >> 6
						bw[wy] |= 1 << uint(y&63)
						if wy < bLo {
							bLo = wy
						}
					}
				}
			}
		}
	}
	// A drained sweep settles every remaining lane: no further
	// propagation can happen, so each leftover target's (resp. source's)
	// current mask is its final answer.
	if fDrained {
		for ; tptr < len(tids); tptr++ {
			t := tids[tptr]
			lanes := bs.tmask[t] &^ settled
			if lanes != 0 {
				if bs.stamp[t] == epoch {
					ans |= lanes & bs.mask[t]
				}
				settled |= lanes
			}
		}
	} else if bDrained {
		for ; sptr >= 0; sptr-- {
			s := sids[sptr]
			lanes := bs.smask[s] &^ settled
			if lanes != 0 {
				if bs.bstamp[s] == epoch {
					ans |= lanes & bs.bmask[s]
				}
				settled |= lanes
			}
		}
	}
	// Leftover pending bits belong to this epoch only; clear the touched
	// windows so the next wave starts from empty bitmaps.
	for wi := fLo; wi <= fHi; wi++ {
		fw[wi] = 0
	}
	for wi := bLo; wi <= bHi; wi++ {
		bw[wi] = 0
	}
	for i := 0; i < k; i++ {
		if live>>uint(i)&1 != 0 {
			out[i] = ans>>uint(i)&1 != 0
		}
	}
	return hubLanes, hubPrunes
}

// topoTinyCutoff is the node count below which BatchReachableTopo runs the
// forward drain alone: the sweep finishes within a few bitmap words, so
// the bidirectional bookkeeping would cost more than it saves.
const topoTinyCutoff = 256

// drainForward runs the seeded forward sweep to exhaustion (no targets, no
// early exit): afterwards every node's mask holds exactly the lanes that
// reach it. The drain consumes every bit it set, leaving the bitmap empty.
func (bs *BatchScratch) drainForward(c *graph.CSR, fLo, fHi int) {
	epoch := bs.epoch
	fw := bs.words
	for wi := fLo; wi <= fHi; wi++ {
		for fw[wi] != 0 {
			b := bits.TrailingZeros64(fw[wi])
			fw[wi] &^= 1 << uint(b)
			x := graph.Node(wi<<6 + b)
			m := bs.pend[x] | bs.mask[x]
			bs.pend[x] = 0
			if m == 0 {
				continue
			}
			for _, y := range c.Successors(x) {
				if bs.stamp[y] != epoch {
					bs.stamp[y] = epoch
					bs.mask[y] = 0
					bs.pend[y] = 0
				}
				if m&^bs.mask[y] == 0 {
					continue
				}
				bs.mask[y] |= m
				if y > x { // self-loops resolved in place
					wy := int(y) >> 6
					fw[wy] |= 1 << uint(y&63)
					if wy > fHi {
						fHi = wy
					}
				}
			}
		}
	}
}

// insertionSort sorts a short id list (at most MaxBatch entries) in place;
// for these sizes it beats the generic sort's dispatch overhead.
func insertionSort(a []graph.Node) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// growBitmaps sizes the two pending bitmaps for n nodes; the sweeps clear
// every bit they set (or the finish pass does), so the bitmaps are
// all-zero between waves and Begin never touches them.
func (bs *BatchScratch) growBitmaps(n int) {
	need := (n + 63) / 64
	if len(bs.words) < need {
		bs.words = make([]uint64, need)
		bs.bwords = make([]uint64, need)
	}
}

// BatchDescendants computes the descendant sets of up to MaxBatch sources
// in one lane-mask BFS: out[i] lists, in ascending order, every node
// reachable from us[i] by a nonempty path (us[i] itself included only when
// it lies on a cycle), exactly as the scalar Descendants. Rows are freshly
// allocated.
func BatchDescendants(c *graph.CSR, bs *BatchScratch, us []graph.Node) [][]graph.Node {
	checkBatch(len(us))
	bs.Begin(c.NumNodes())
	for i, u := range us {
		bs.Seed(u, 1<<uint(i))
	}
	bs.RunForward(c)
	return bs.collect(len(us))
}

// BatchAncestors is the predecessor-direction mirror of BatchDescendants:
// out[i] lists every node with a nonempty path to us[i].
func BatchAncestors(c *graph.CSR, bs *BatchScratch, us []graph.Node) [][]graph.Node {
	checkBatch(len(us))
	bs.Begin(c.NumNodes())
	for i, u := range us {
		bs.Seed(u, 1<<uint(i))
	}
	bs.RunBackward(c)
	return bs.collect(len(us))
}

// collect distributes the reached lane masks into k per-lane sorted rows.
func (bs *BatchScratch) collect(k int) [][]graph.Node {
	out := make([][]graph.Node, k)
	for _, v := range bs.touched {
		m := bs.mask[v]
		for m != 0 {
			i := bits.TrailingZeros64(m)
			out[i] = append(out[i], v)
			m &= m - 1
		}
	}
	for i := range out {
		slices.Sort(out[i])
	}
	return out
}
