package queries

import (
	"repro/internal/graph"
)

// This file holds the traversal primitives behind cross-shard query
// routing: a sharded reachability query decomposes into a local forward
// collection (which boundary classes does u reach?), a multi-source hop
// over the boundary summary, and a local backward collection. All three
// reuse the epoch-stamped Scratch, so a warm routed query allocates nothing
// beyond result-slice growth.

// DescendantsCSR appends to dst every node reachable from u by a nonempty
// path over c and returns the extended slice. With a warm scratch and a
// dst of sufficient capacity the call performs no heap allocation.
func DescendantsCSR(c *graph.CSR, s *Scratch, u graph.Node, dst []graph.Node) []graph.Node {
	s.begin(c.NumNodes())
	epoch := s.epoch
	queue := s.queue[:0]
	for _, w := range c.Successors(u) {
		if s.fwd[w] != epoch {
			s.fwd[w] = epoch
			queue = append(queue, w)
		}
	}
	for i := 0; i < len(queue); i++ {
		for _, w := range c.Successors(queue[i]) {
			if s.fwd[w] != epoch {
				s.fwd[w] = epoch
				queue = append(queue, w)
			}
		}
	}
	dst = append(dst, queue...)
	s.queue = queue
	return dst
}

// AncestorsCSR appends to dst every node that reaches u by a nonempty path
// over c and returns the extended slice.
func AncestorsCSR(c *graph.CSR, s *Scratch, u graph.Node, dst []graph.Node) []graph.Node {
	s.begin(c.NumNodes())
	epoch := s.epoch
	queue := s.queue[:0]
	for _, w := range c.Predecessors(u) {
		if s.bwd[w] != epoch {
			s.bwd[w] = epoch
			queue = append(queue, w)
		}
	}
	for i := 0; i < len(queue); i++ {
		for _, w := range c.Predecessors(queue[i]) {
			if s.bwd[w] != epoch {
				s.bwd[w] = epoch
				queue = append(queue, w)
			}
		}
	}
	dst = append(dst, queue...)
	s.queue = queue
	return dst
}

// ReachableAnyCSR reports whether any source reaches a node satisfying
// isTarget by a nonempty path over c. Sources themselves satisfy the query
// only when re-reached through an edge, matching the nonempty-path
// semantics of Reachable. isTarget is consulted once per distinct visited
// node.
func ReachableAnyCSR(c *graph.CSR, s *Scratch, sources []graph.Node, isTarget func(graph.Node) bool) bool {
	s.begin(c.NumNodes())
	epoch := s.epoch
	queue := s.queue[:0]
	hit := false
	visit := func(w graph.Node) {
		if s.fwd[w] != epoch {
			s.fwd[w] = epoch
			if isTarget(w) {
				hit = true
				return
			}
			queue = append(queue, w)
		}
	}
	for _, u := range sources {
		for _, w := range c.Successors(u) {
			visit(w)
			if hit {
				s.queue = queue
				return true
			}
		}
	}
	for i := 0; i < len(queue); i++ {
		for _, w := range c.Successors(queue[i]) {
			visit(w)
			if hit {
				s.queue = queue
				return true
			}
		}
	}
	s.queue = queue
	return false
}
