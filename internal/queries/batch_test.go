package queries_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/queries"
)

// batchTopologies is the differential zoo for the lane-mask BFS: every
// generator family at small scale.
func batchTopologies(seed int64) map[string]*graph.Graph {
	rng := func(d int64) *rand.Rand { return rand.New(rand.NewSource(seed + d)) }
	return map[string]*graph.Graph{
		"social":   gen.Social(rng(0), 200, 800, 4),
		"web":      gen.Web(rng(1), 200, 700, 4),
		"citation": gen.Citation(rng(2), 180, 600, 4),
		"p2p":      gen.P2P(rng(3), 180, 500, 4),
		"er":       gen.ErdosRenyi(rng(4), 140, 450, 4),
	}
}

// TestBatchReachableMatchesScalar pins the tentpole equality: a 64-lane
// batch answers exactly what 64 scalar BFS calls answer, on every topology,
// for full and ragged batch sizes.
func TestBatchReachableMatchesScalar(t *testing.T) {
	for name, g := range batchTopologies(3) {
		c := g.Freeze()
		n := c.NumNodes()
		rng := rand.New(rand.NewSource(17))
		sc := queries.NewScratch(n)
		bs := queries.NewBatchScratch(n)
		for _, k := range []int{1, 3, 64} {
			for round := 0; round < 6; round++ {
				us := make([]graph.Node, k)
				vs := make([]graph.Node, k)
				for i := range us {
					us[i] = graph.Node(rng.Intn(n))
					if round%2 == 0 {
						vs[i] = graph.Node(rng.Intn(n))
					} else {
						vs[i] = us[i] // self queries: true only on cycles
					}
				}
				out := make([]bool, k)
				queries.BatchReachable(c, bs, us, vs, out)
				for i := range us {
					want := queries.ReachableCSR(c, sc, us[i], vs[i])
					if out[i] != want {
						t.Fatalf("%s k=%d: batch QR(%d,%d)=%v scalar %v",
							name, k, us[i], vs[i], out[i], want)
					}
				}
			}
		}
	}
}

// TestBatchDescendantsAncestorsMatchScalar checks the set-valued forms
// against the scalar boolean-slice traversals.
func TestBatchDescendantsAncestorsMatchScalar(t *testing.T) {
	for name, g := range batchTopologies(9) {
		c := g.Freeze()
		n := c.NumNodes()
		rng := rand.New(rand.NewSource(5))
		bs := queries.NewBatchScratch(n)
		us := make([]graph.Node, 32)
		for i := range us {
			us[i] = graph.Node(rng.Intn(n))
		}
		desc := queries.BatchDescendants(c, bs, us)
		anc := queries.BatchAncestors(c, bs, us)
		for i, u := range us {
			wantD := queries.Descendants(g, u)
			wantA := queries.Ancestors(g, u)
			checkSet(t, name+" descendants", u, desc[i], wantD)
			checkSet(t, name+" ancestors", u, anc[i], wantA)
		}
	}
}

func checkSet(t *testing.T, what string, u graph.Node, got []graph.Node, want []bool) {
	t.Helper()
	cnt := 0
	for _, w := range want {
		if w {
			cnt++
		}
	}
	if len(got) != cnt {
		t.Fatalf("%s of %d: %d nodes, scalar %d", what, u, len(got), cnt)
	}
	prev := graph.Node(-1)
	for _, v := range got {
		if v <= prev {
			t.Fatalf("%s of %d: row not sorted/unique at %d", what, u, v)
		}
		if !want[v] {
			t.Fatalf("%s of %d: extra node %d", what, u, v)
		}
		prev = v
	}
}

// TestBatchScratchReuse checks epoch stamping: the same scratch must give
// fresh, correct answers across many batches and across graphs of
// different sizes, with shared and duplicate endpoints.
func TestBatchScratchReuse(t *testing.T) {
	zoo := batchTopologies(21)
	bs := queries.NewBatchScratch(0)
	sc := queries.NewScratch(0)
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 4; round++ {
		for name, g := range zoo {
			c := g.Freeze()
			n := c.NumNodes()
			us := make([]graph.Node, 16)
			vs := make([]graph.Node, 16)
			shared := graph.Node(rng.Intn(n))
			for i := range us {
				us[i] = shared // all lanes share one source
				vs[i] = graph.Node(rng.Intn(n))
			}
			out := make([]bool, 16)
			queries.BatchReachable(c, bs, us, vs, out)
			for i := range us {
				if want := queries.ReachableCSR(c, sc, us[i], vs[i]); out[i] != want {
					t.Fatalf("%s round %d: shared-source lane %d diverged", name, round, i)
				}
			}
		}
	}
}

// TestBatchEngineComposition exercises the raw Begin/Seed/Target/Run
// surface the routing layer uses: multi-seed lanes and multi-target lanes.
func TestBatchEngineComposition(t *testing.T) {
	g := gen.Web(rand.New(rand.NewSource(4)), 150, 500, 3)
	c := g.Freeze()
	n := c.NumNodes()
	rng := rand.New(rand.NewSource(6))
	bs := queries.NewBatchScratch(n)
	sc := queries.NewScratch(n)
	for round := 0; round < 20; round++ {
		// Lane 0: two sources, two targets. Lane 1: one source, one target.
		s0a, s0b := graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n))
		t0a, t0b := graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n))
		s1, t1 := graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n))
		bs.Begin(n)
		bs.Seed(s0a, 1)
		bs.Seed(s0b, 1)
		bs.Seed(s1, 2)
		bs.Target(t0a, 1)
		bs.Target(t0b, 1)
		bs.Target(t1, 2)
		done := bs.RunForward(c)
		want0 := queries.ReachableCSR(c, sc, s0a, t0a) || queries.ReachableCSR(c, sc, s0a, t0b) ||
			queries.ReachableCSR(c, sc, s0b, t0a) || queries.ReachableCSR(c, sc, s0b, t0b)
		want1 := queries.ReachableCSR(c, sc, s1, t1)
		if got0 := done&1 != 0; got0 != want0 {
			t.Fatalf("round %d: multi-seed/target lane got %v want %v", round, got0, want0)
		}
		if got1 := done&2 != 0; got1 != want1 {
			t.Fatalf("round %d: simple lane got %v want %v", round, got1, want1)
		}
	}
}

// topoDAG builds a random topologically ordered CSR — every non-self-loop
// edge goes from a smaller to a larger id — with self-loops sprinkled in,
// the exact shape of a published reachability quotient.
func topoDAG(seed int64, n, m, loops int) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(nil)
	for v := 0; v < n; v++ {
		g.AddNodeNamed("σ")
	}
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.AddEdge(graph.Node(u), graph.Node(v))
	}
	for i := 0; i < loops; i++ {
		v := graph.Node(rng.Intn(n))
		g.AddEdge(v, v)
	}
	return g.Freeze()
}

// TestBatchReachableTopoMatchesScalar pins the topological sweep against
// the scalar BFS on DAG+self-loop graphs BOTH below and well above the
// tiny-drain cutoff, so the bidirectional retirement path (cost-balanced
// alternation, lane settlement, drained extraction) is exercised, not
// just the forward drain. Pair mixes cover the O(1) prefilter (backward
// and same-node pairs), narrow and wide windows, and ragged lane counts.
func TestBatchReachableTopoMatchesScalar(t *testing.T) {
	for _, tc := range []struct{ n, m, loops int }{
		{60, 150, 10},    // tiny path (below topoTinyCutoff)
		{900, 2800, 60},  // retirement path, citation-like density
		{2000, 3500, 0},  // retirement path, sparse, no cycles
		{500, 6000, 400}, // dense with many self-loops
	} {
		c := topoDAG(int64(tc.n), tc.n, tc.m, tc.loops)
		if !graph.IsTopoOrdered(c) {
			t.Fatalf("n=%d: construction violated topo order", tc.n)
		}
		rng := rand.New(rand.NewSource(int64(tc.m)))
		sc := queries.NewScratch(0)
		bs := queries.NewBatchScratch(0)
		for _, k := range []int{1, 5, 64} {
			for round := 0; round < 8; round++ {
				us := make([]graph.Node, k)
				vs := make([]graph.Node, k)
				for i := range us {
					us[i] = graph.Node(rng.Intn(tc.n))
					switch i % 4 {
					case 0: // same node: true iff self-loop
						vs[i] = us[i]
					case 1: // narrow forward window
						d := rng.Intn(tc.n/8) + 1
						if int(us[i])+d < tc.n {
							vs[i] = us[i] + graph.Node(d)
						} else {
							vs[i] = graph.Node(tc.n - 1)
						}
					default: // unconstrained (includes backward pairs)
						vs[i] = graph.Node(rng.Intn(tc.n))
					}
				}
				out := make([]bool, k)
				queries.BatchReachableTopo(c, bs, us, vs, out)
				for i := range us {
					if want := queries.ReachableCSR(c, sc, us[i], vs[i]); out[i] != want {
						t.Fatalf("n=%d k=%d round %d: topo QR(%d,%d)=%v scalar %v",
							tc.n, k, round, us[i], vs[i], out[i], want)
					}
				}
			}
		}
	}
}

// oracleHub is a HubDesc over explicitly precomputed descendant bitsets,
// built by an independent per-node BFS so the hub path is pinned against a
// second implementation, not against the sweep it accelerates.
type oracleHub struct {
	rows map[graph.Node][]uint64
}

func (h *oracleHub) Desc(v graph.Node) []uint64 { return h.rows[v] }

// buildOracleHub memoizes the nonempty-path descendant bitsets of the
// `hubs` highest out-degree nodes of c.
func buildOracleHub(c *graph.CSR, hubs int) *oracleHub {
	n := c.NumNodes()
	byDeg := make([]graph.Node, n)
	for v := range byDeg {
		byDeg[v] = graph.Node(v)
	}
	sort.Slice(byDeg, func(i, j int) bool { return c.OutDegree(byDeg[i]) > c.OutDegree(byDeg[j]) })
	if hubs > n {
		hubs = n
	}
	h := &oracleHub{rows: make(map[graph.Node][]uint64, hubs)}
	for _, x := range byDeg[:hubs] {
		row := make([]uint64, (n+63)/64)
		stack := append([]graph.Node(nil), c.Successors(x)...)
		seen := make([]bool, n)
		for len(stack) > 0 {
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[y] {
				continue
			}
			seen[y] = true
			row[int(y)>>6] |= 1 << uint(y&63)
			stack = append(stack, c.Successors(y)...)
		}
		h.rows[x] = row
	}
	return h
}

// TestBatchReachableTopoHubMatchesScalar pins the hub-pruned sweep against
// the plain topo sweep AND the scalar BFS: cached rows may only change
// costs, never answers. The pair mix deliberately seeds lanes AT hub nodes
// (prefilter peel) and routes lanes THROUGH them (forward-sweep prune), and
// the test asserts both hub paths actually fired.
func TestBatchReachableTopoHubMatchesScalar(t *testing.T) {
	for _, tc := range []struct{ n, m, loops int }{
		{900, 2800, 60},
		{2000, 3500, 0},
	} {
		c := topoDAG(int64(tc.n), tc.n, tc.m, tc.loops)
		hub := buildOracleHub(c, 24)
		hubIDs := make([]graph.Node, 0, len(hub.rows))
		for v := range hub.rows {
			hubIDs = append(hubIDs, v)
		}
		rng := rand.New(rand.NewSource(int64(tc.n)))
		sc := queries.NewScratch(0)
		bs := queries.NewBatchScratch(0)
		bsHub := queries.NewBatchScratch(0)
		totLanes, totPrunes := 0, 0
		for _, k := range []int{1, 7, 64} {
			for round := 0; round < 8; round++ {
				us := make([]graph.Node, k)
				vs := make([]graph.Node, k)
				for i := range us {
					if i%3 == 0 { // seed at a hub: exercises the prefilter peel
						us[i] = hubIDs[rng.Intn(len(hubIDs))]
					} else {
						us[i] = graph.Node(rng.Intn(tc.n))
					}
					vs[i] = graph.Node(rng.Intn(tc.n))
				}
				out := make([]bool, k)
				outHub := make([]bool, k)
				queries.BatchReachableTopo(c, bs, us, vs, out)
				lanes, prunes := queries.BatchReachableTopoHub(c, bsHub, hub, us, vs, outHub)
				totLanes += lanes
				totPrunes += prunes
				for i := range us {
					want := queries.ReachableCSR(c, sc, us[i], vs[i])
					if out[i] != want || outHub[i] != want {
						t.Fatalf("n=%d k=%d round %d: QR(%d,%d) topo=%v hub=%v scalar=%v",
							tc.n, k, round, us[i], vs[i], out[i], outHub[i], want)
					}
				}
			}
		}
		if totLanes == 0 {
			t.Fatalf("n=%d: prefilter peel never fired despite hub-seeded lanes", tc.n)
		}
		if totPrunes == 0 {
			t.Fatalf("n=%d: forward-sweep hub prune never fired", tc.n)
		}
	}
}
