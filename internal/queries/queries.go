// Package queries implements query evaluation algorithms over labeled
// directed graphs: reachability via BFS and bidirectional BFS, and
// level-bounded multi-source traversals used by bounded simulation.
//
// The algorithms are deliberately generic over *graph.Graph and contain no
// knowledge of compression: the paper's central claim is that any evaluation
// algorithm for a query class runs unmodified on the compressed graph Gr.
// The test suites for the compression packages exercise exactly these
// functions on both G and Gr.
package queries

import (
	"repro/internal/graph"
)

// Reachable answers the reachability query QR(u,v): does a nonempty path
// from u to v exist? Following the paper, a path has length >= 1, so
// Reachable(g,u,u) is true only if u lies on a cycle (including a
// self-loop).
func Reachable(g *graph.Graph, u, v graph.Node) bool {
	seen := make([]bool, g.NumNodes())
	queue := make([]graph.Node, 0, 16)
	for _, w := range g.Successors(u) {
		if w == v {
			return true
		}
		if !seen[w] {
			seen[w] = true
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.Successors(x) {
			if w == v {
				return true
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// ReachableBi answers QR(u,v) with a bidirectional BFS (the paper's BIBFS):
// it alternates expanding the smaller frontier of a forward search from u
// and a backward search from v until the frontiers meet.
func ReachableBi(g *graph.Graph, u, v graph.Node) bool {
	n := g.NumNodes()
	// 0 = unseen, 1 = forward, 2 = backward.
	mark := make([]uint8, n)
	fwd := make([]graph.Node, 0, 16)
	bwd := make([]graph.Node, 0, 16)

	// Seed frontiers with the successors of u and predecessors of v so
	// that only nonempty paths count.
	for _, w := range g.Successors(u) {
		if w == v {
			return true
		}
		if mark[w] == 0 {
			mark[w] = 1
			fwd = append(fwd, w)
		}
	}
	for _, w := range g.Predecessors(v) {
		if mark[w] == 1 {
			return true
		}
		if mark[w] == 0 {
			mark[w] = 2
			bwd = append(bwd, w)
		}
	}

	for len(fwd) > 0 && len(bwd) > 0 {
		if len(fwd) <= len(bwd) {
			var next []graph.Node
			for _, x := range fwd {
				for _, w := range g.Successors(x) {
					switch mark[w] {
					case 2:
						return true
					case 0:
						mark[w] = 1
						next = append(next, w)
					}
				}
			}
			fwd = next
		} else {
			var next []graph.Node
			for _, x := range bwd {
				for _, w := range g.Predecessors(x) {
					switch mark[w] {
					case 1:
						return true
					case 0:
						mark[w] = 2
						next = append(next, w)
					}
				}
			}
			bwd = next
		}
	}
	return false
}

// Descendants returns the set of nodes reachable from u via nonempty paths,
// as a boolean slice indexed by node.
func Descendants(g *graph.Graph, u graph.Node) []bool {
	seen := make([]bool, g.NumNodes())
	queue := make([]graph.Node, 0, 16)
	for _, w := range g.Successors(u) {
		if !seen[w] {
			seen[w] = true
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.Successors(x) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// Ancestors returns the set of nodes that reach u via nonempty paths.
func Ancestors(g *graph.Graph, u graph.Node) []bool {
	seen := make([]bool, g.NumNodes())
	queue := make([]graph.Node, 0, 16)
	for _, w := range g.Predecessors(u) {
		if !seen[w] {
			seen[w] = true
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.Predecessors(x) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// ReverseWithin marks every node that has a nonempty path of length at most
// bound to some node in targets (targets given as a boolean slice). A bound
// of Unbounded means no length restriction. The result slice is indexed by
// node. This is the primitive bounded simulation is built on: computing, for
// a pattern edge (u,u') with bound k, the set of graph nodes within distance
// k of the current match set of u'.
func ReverseWithin(g *graph.Graph, targets []bool, bound int) []bool {
	n := g.NumNodes()
	result := make([]bool, n)
	frontier := make([]graph.Node, 0, 64)
	// Level 1: direct predecessors of targets.
	for v := 0; v < n; v++ {
		if !targets[v] {
			continue
		}
		for _, p := range g.Predecessors(graph.Node(v)) {
			if !result[p] {
				result[p] = true
				frontier = append(frontier, p)
			}
		}
	}
	level := 1
	for len(frontier) > 0 && (bound == Unbounded || level < bound) {
		var next []graph.Node
		for _, x := range frontier {
			for _, p := range g.Predecessors(x) {
				if !result[p] {
					result[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
		level++
	}
	return result
}

// Unbounded marks a pattern-edge bound of "*": path length unrestricted.
const Unbounded = -1

// Distance returns the length of the shortest nonempty path from u to v, or
// -1 if v is unreachable from u.
func Distance(g *graph.Graph, u, v graph.Node) int {
	seen := make([]bool, g.NumNodes())
	frontier := []graph.Node{}
	for _, w := range g.Successors(u) {
		if w == v {
			return 1
		}
		if !seen[w] {
			seen[w] = true
			frontier = append(frontier, w)
		}
	}
	d := 1
	for len(frontier) > 0 {
		var next []graph.Node
		for _, x := range frontier {
			for _, w := range g.Successors(x) {
				if w == v {
					return d + 1
				}
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
		d++
	}
	return -1
}
