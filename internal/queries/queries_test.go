package queries

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func buildGraph(n int, edges [][2]graph.Node) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNodeNamed("X")
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNodeNamed("X")
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
	}
	return g
}

func TestReachableBasic(t *testing.T) {
	g := buildGraph(5, [][2]graph.Node{{0, 1}, {1, 2}, {3, 4}})
	cases := []struct {
		u, v graph.Node
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {1, 0, false},
		{0, 3, false}, {3, 4, true}, {4, 3, false},
		{0, 0, false}, // no cycle: strict reachability is false
	}
	for _, c := range cases {
		if got := Reachable(g, c.u, c.v); got != c.want {
			t.Errorf("Reachable(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
		if got := ReachableBi(g, c.u, c.v); got != c.want {
			t.Errorf("ReachableBi(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestReachableSelfOnCycle(t *testing.T) {
	g := buildGraph(3, [][2]graph.Node{{0, 1}, {1, 0}, {2, 2}})
	for _, v := range []graph.Node{0, 1, 2} {
		if !Reachable(g, v, v) {
			t.Errorf("Reachable(%d,%d) = false on cycle", v, v)
		}
		if !ReachableBi(g, v, v) {
			t.Errorf("ReachableBi(%d,%d) = false on cycle", v, v)
		}
	}
}

func TestBiBFSAgreesWithBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(160))
		for trial := 0; trial < 40; trial++ {
			u, v := graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n))
			if Reachable(g, u, v) != ReachableBi(g, u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDescendantsAncestorsDual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(100))
		for trial := 0; trial < 20; trial++ {
			u := graph.Node(rng.Intn(n))
			desc := Descendants(g, u)
			for v := 0; v < n; v++ {
				if desc[v] != Reachable(g, u, graph.Node(v)) {
					return false
				}
				anc := Ancestors(g, graph.Node(v))
				if anc[u] != desc[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDistance(t *testing.T) {
	g := buildGraph(5, [][2]graph.Node{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {3, 3}})
	cases := []struct {
		u, v graph.Node
		want int
	}{
		{0, 1, 1}, {0, 2, 2}, {0, 3, 1}, {1, 3, 2},
		{3, 3, 1}, {0, 0, -1}, {4, 0, -1}, {0, 4, -1},
	}
	for _, c := range cases {
		if got := Distance(g, c.u, c.v); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
}

func TestReverseWithin(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3 with target {3}.
	g := buildGraph(4, [][2]graph.Node{{0, 1}, {1, 2}, {2, 3}})
	targets := []bool{false, false, false, true}
	r1 := ReverseWithin(g, targets, 1)
	if !r1[2] || r1[1] || r1[0] || r1[3] {
		t.Fatalf("bound 1: %v", r1)
	}
	r2 := ReverseWithin(g, targets, 2)
	if !r2[2] || !r2[1] || r2[0] {
		t.Fatalf("bound 2: %v", r2)
	}
	rAll := ReverseWithin(g, targets, Unbounded)
	if !rAll[0] || !rAll[1] || !rAll[2] || rAll[3] {
		t.Fatalf("unbounded: %v", rAll)
	}
}

func TestReverseWithinSelfTarget(t *testing.T) {
	// Cycle 0 <-> 1: node 1 has a nonempty path to itself, so with targets
	// {1}, unbounded reverse reach must include 1.
	g := buildGraph(2, [][2]graph.Node{{0, 1}, {1, 0}})
	r := ReverseWithin(g, []bool{false, true}, Unbounded)
	if !r[0] || !r[1] {
		t.Fatalf("cycle reverse reach: %v", r)
	}
}

func TestReverseWithinMatchesDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(80))
		targets := make([]bool, n)
		for i := 0; i < 1+rng.Intn(3); i++ {
			targets[rng.Intn(n)] = true
		}
		bound := 1 + rng.Intn(4)
		got := ReverseWithin(g, targets, bound)
		for v := 0; v < n; v++ {
			want := false
			for w := 0; w < n; w++ {
				if targets[w] {
					if d := Distance(g, graph.Node(v), graph.Node(w)); d != -1 && d <= bound {
						want = true
					}
				}
			}
			if got[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
