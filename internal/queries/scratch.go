package queries

import (
	"repro/internal/graph"
)

// Scratch is reusable traversal state for the CSR-backed query functions.
// Visited marks are epoch-stamped: each query bumps the epoch instead of
// clearing the mark arrays, so a warm Scratch makes repeated queries over
// the same snapshot allocate nothing at all. A Scratch is owned by one
// goroutine; concurrent queries each use their own.
type Scratch struct {
	fwd, bwd []uint32 // per node: epoch at which the mark was set
	epoch    uint32
	queue    []graph.Node
	next     []graph.Node
}

// NewScratch returns a Scratch pre-sized for an n-node graph. Scratches
// grow on demand, so sizing is an optimization, not a requirement.
func NewScratch(n int) *Scratch {
	return &Scratch{
		fwd:   make([]uint32, n),
		bwd:   make([]uint32, n),
		queue: make([]graph.Node, 0, 64),
		next:  make([]graph.Node, 0, 64),
	}
}

// begin readies the scratch for a query over an n-node graph: grows the
// mark arrays if needed and advances the epoch, zeroing marks only on
// wraparound (once per 2³²-1 queries).
func (s *Scratch) begin(n int) {
	if len(s.fwd) < n {
		s.fwd = make([]uint32, n)
		s.bwd = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale marks could alias the new epoch
		clear(s.fwd)
		clear(s.bwd)
		s.epoch = 1
	}
}

// ReachableCSR answers QR(u,v) on a CSR snapshot with the same BFS as
// Reachable, using s for visited marks and the queue. With a warm scratch
// the query performs zero heap allocations.
func ReachableCSR(c *graph.CSR, s *Scratch, u, v graph.Node) bool {
	s.begin(c.NumNodes())
	epoch := s.epoch
	queue := s.queue[:0]
	for _, w := range c.Successors(u) {
		if w == v {
			s.queue = queue
			return true
		}
		if s.fwd[w] != epoch {
			s.fwd[w] = epoch
			queue = append(queue, w)
		}
	}
	for i := 0; i < len(queue); i++ {
		for _, w := range c.Successors(queue[i]) {
			if w == v {
				s.queue = queue
				return true
			}
			if s.fwd[w] != epoch {
				s.fwd[w] = epoch
				queue = append(queue, w)
			}
		}
	}
	s.queue = queue
	return false
}

// ReachableBiCSR answers QR(u,v) with the bidirectional BFS of ReachableBi
// on a CSR snapshot, allocation-free with a warm scratch.
func ReachableBiCSR(c *graph.CSR, s *Scratch, u, v graph.Node) bool {
	s.begin(c.NumNodes())
	epoch := s.epoch
	fwd := s.queue[:0]
	bwd := s.next[:0]
	// Give the grown queues back to the scratch on every exit path so the
	// capacity is retained for the next query.
	done := func(r bool) bool {
		s.queue, s.next = fwd, bwd
		return r
	}

	// Seed frontiers with the successors of u and predecessors of v so
	// that only nonempty paths count.
	for _, w := range c.Successors(u) {
		if w == v {
			return done(true)
		}
		if s.fwd[w] != epoch {
			s.fwd[w] = epoch
			fwd = append(fwd, w)
		}
	}
	for _, w := range c.Predecessors(v) {
		if s.fwd[w] == epoch {
			return done(true)
		}
		if s.bwd[w] != epoch {
			s.bwd[w] = epoch
			bwd = append(bwd, w)
		}
	}

	// Expand the smaller frontier each round. Frontiers are consumed from
	// the front (lo index) and the new frontier is appended behind, so each
	// slice acts as its own queue without per-level reallocation.
	fLo, bLo := 0, 0
	for fLo < len(fwd) && bLo < len(bwd) {
		if len(fwd)-fLo <= len(bwd)-bLo {
			hi := len(fwd)
			for ; fLo < hi; fLo++ {
				for _, w := range c.Successors(fwd[fLo]) {
					if s.bwd[w] == epoch {
						return done(true)
					}
					if s.fwd[w] != epoch {
						s.fwd[w] = epoch
						fwd = append(fwd, w)
					}
				}
			}
		} else {
			hi := len(bwd)
			for ; bLo < hi; bLo++ {
				for _, w := range c.Predecessors(bwd[bLo]) {
					if s.fwd[w] == epoch {
						return done(true)
					}
					if s.bwd[w] != epoch {
						s.bwd[w] = epoch
						bwd = append(bwd, w)
					}
				}
			}
		}
	}
	return done(false)
}

// ReverseWithinCSR is ReverseWithin over a CSR snapshot: it marks every
// node with a nonempty path of length at most bound to some node in
// targets. Unlike the scratch-based point queries it returns a fresh
// result slice, since callers (bounded simulation) retain the result.
func ReverseWithinCSR(c *graph.CSR, targets []bool, bound int) []bool {
	n := c.NumNodes()
	result := make([]bool, n)
	frontier := make([]graph.Node, 0, 64)
	for v := 0; v < n; v++ {
		if !targets[v] {
			continue
		}
		for _, p := range c.Predecessors(graph.Node(v)) {
			if !result[p] {
				result[p] = true
				frontier = append(frontier, p)
			}
		}
	}
	level := 1
	for len(frontier) > 0 && (bound == Unbounded || level < bound) {
		var next []graph.Node
		for _, x := range frontier {
			for _, p := range c.Predecessors(x) {
				if !result[p] {
					result[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
		level++
	}
	return result
}
