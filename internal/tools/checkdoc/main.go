// Command checkdoc verifies that every exported identifier in the given Go
// source files carries a doc comment, so the public facade's godoc can
// never silently rot. It is the doc-comment gate of the CI docs job:
//
//	go run ./internal/tools/checkdoc qpgc.go
//
// Grouped declarations are handled per spec: inside a type/const/var block
// each exported spec needs its own comment (or the block's, when it is the
// only spec). Exported methods are checked like functions. Exit status is 1
// if any identifier is undocumented, with one line per finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkdoc <file.go> [file.go ...]")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		missing, err := check(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdoc: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "checkdoc: %d exported identifier(s) lack doc comments\n", bad)
		os.Exit(1)
	}
}

// check parses one file and returns a "file:line: name" finding per
// exported identifier that has no doc comment.
func check(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && !(len(d.Specs) == 1 && d.Doc != nil) {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					// One comment may cover a multi-name spec ("var A, B ...");
					// it must exist on the spec or on a single-spec block.
					documented := sp.Doc != nil || (len(d.Specs) == 1 && d.Doc != nil)
					for _, name := range sp.Names {
						if name.IsExported() && !documented {
							report(name.Pos(), "value", name.Name)
						}
					}
				}
			}
		}
	}
	return missing, nil
}
