package qpgc

import (
	"repro/internal/server"
)

// Networked serving. A Server fronts a Store or ShardedStore over TCP with
// a length-prefixed binary protocol: reachability, batch reachability,
// pattern matching, update batches, stats, plus snapshot fetch and WAL
// tailing for replication. Every response carries the epoch it was
// answered at — the session's read-your-writes token — and reads may pin a
// minimum epoch the server waits for before answering (see
// internal/server for the wire format).
type (
	// Server serves a Backend over TCP.
	Server = server.Server
	// ServerOptions configures NewServer/StartServer (backend, replication
	// directory, read admission cap, epoch-wait bound).
	ServerOptions = server.Options
	// ServerBackend is the query surface a Server fronts: a Store, a
	// ShardedStore, or a replica Follower.
	ServerBackend = server.Backend
	// ServerInfo is the stats summary returned by ServerClient.Stats.
	ServerInfo = server.Info
	// ServerClient is a synchronous client for one Server connection; it
	// tracks the highest epoch it has observed (ServerClient.LastEpoch)
	// as its read-your-writes token.
	ServerClient = server.Client
	// FailoverClient is a client over an endpoint set that survives leader
	// failover: on fenced, stale-term or connection errors it rediscovers
	// the current leader with capped backoff and retries, preserving
	// read-your-writes across the switch.
	FailoverClient = server.FailoverClient
	// FailoverOptions configures DialFailover (endpoint set, per-request
	// timeout, backoff cap, attempt budget).
	FailoverOptions = server.FailoverOptions
	// ServerWireError is a structured server-reported failure: its Code
	// distinguishes read-only, fenced and stale-term rejections, and
	// errors.Is matches it against the corresponding sentinels.
	ServerWireError = server.WireError
	// Promoter is the optional promotion surface a ServerBackend may
	// implement — a replica Follower does. See Follower.Promote.
	Promoter = server.Promoter
)

// ErrServerReadOnly is returned (over the wire) for writes sent to a
// backend that does not accept them, such as a replica Follower.
var ErrServerReadOnly = server.ErrReadOnly

// ErrSnapshotNeeded reports that a WAL tail position has been truncated
// away on the leader; the follower must re-bootstrap from a snapshot.
var ErrSnapshotNeeded = server.ErrSnapshotNeeded

// ErrServerFenced is returned (over the wire) by an endpoint that fenced
// itself after observing a newer leader term: its history is frozen and it
// will never accept the write — fail over to the current leader.
var ErrServerFenced = server.ErrFenced

// ErrServerStaleTerm is returned (over the wire) to a writer carrying a
// term below the endpoint's: the writer's view of the leadership is
// outdated and it must rediscover the leader.
var ErrServerStaleTerm = server.ErrStaleTerm

// DialFailover connects to the best endpoint of a set (the writable one
// with the highest term) and keeps operating across leader failover.
func DialFailover(opts FailoverOptions) (*FailoverClient, error) {
	return server.DialFailover(opts)
}

// NewStoreBackend adapts a Store for serving.
func NewStoreBackend(s *Store) ServerBackend { return server.NewStoreBackend(s) }

// NewShardedBackend adapts a ShardedStore for serving.
func NewShardedBackend(s *ShardedStore) ServerBackend { return server.NewShardedBackend(s) }

// StartServer listens on addr and serves the backend until Close. With
// ServerOptions.ReplDir set, followers may bootstrap and tail from the
// directory's checkpoints and WAL segments.
func StartServer(addr string, opts ServerOptions) (*Server, error) {
	return server.Start(addr, opts)
}

// DialServer connects a client to a Server.
func DialServer(addr string) (*ServerClient, error) { return server.Dial(addr) }
