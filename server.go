package qpgc

import (
	"repro/internal/server"
)

// Networked serving. A Server fronts a Store or ShardedStore over TCP with
// a length-prefixed binary protocol: reachability, batch reachability,
// pattern matching, update batches, stats, plus snapshot fetch and WAL
// tailing for replication. Every response carries the epoch it was
// answered at — the session's read-your-writes token — and reads may pin a
// minimum epoch the server waits for before answering (see
// internal/server for the wire format).
type (
	// Server serves a Backend over TCP.
	Server = server.Server
	// ServerOptions configures NewServer/StartServer (backend, replication
	// directory, read admission cap, epoch-wait bound).
	ServerOptions = server.Options
	// ServerBackend is the query surface a Server fronts: a Store, a
	// ShardedStore, or a replica Follower.
	ServerBackend = server.Backend
	// ServerInfo is the stats summary returned by ServerClient.Stats.
	ServerInfo = server.Info
	// ServerClient is a synchronous client for one Server connection; it
	// tracks the highest epoch it has observed (ServerClient.LastEpoch)
	// as its read-your-writes token.
	ServerClient = server.Client
)

// ErrServerReadOnly is returned (over the wire) for writes sent to a
// backend that does not accept them, such as a replica Follower.
var ErrServerReadOnly = server.ErrReadOnly

// ErrSnapshotNeeded reports that a WAL tail position has been truncated
// away on the leader; the follower must re-bootstrap from a snapshot.
var ErrSnapshotNeeded = server.ErrSnapshotNeeded

// NewStoreBackend adapts a Store for serving.
func NewStoreBackend(s *Store) ServerBackend { return server.NewStoreBackend(s) }

// NewShardedBackend adapts a ShardedStore for serving.
func NewShardedBackend(s *ShardedStore) ServerBackend { return server.NewShardedBackend(s) }

// StartServer listens on addr and serves the backend until Close. With
// ServerOptions.ReplDir set, followers may bootstrap and tail from the
// directory's checkpoints and WAL segments.
func StartServer(addr string, opts ServerOptions) (*Server, error) {
	return server.Start(addr, opts)
}

// DialServer connects a client to a Server.
func DialServer(addr string) (*ServerClient, error) { return server.Dial(addr) }
