package qpgc

import (
	"repro/internal/obs"
)

// Observability. A Registry is a zero-dependency metrics core shared by
// every layer of the serving stack: atomic counters and gauges, fixed
// log-scale latency histograms rendered as p50/p95/p99/max summaries, and
// scrape-time callback instruments that read lifetime counters a subsystem
// already keeps. Stores, servers, and replicas accept a *Registry through
// their options; a nil registry (and every instrument handed out by one)
// is a no-op, so uninstrumented runs pay nothing on the hot path. One
// registry scrapes as a single Prometheus text exposition — over the
// MsgMetrics RPC of a served endpoint, or over the HTTP side-listener of
// ServeMetrics (see internal/obs for the full model).
type (
	// Registry is a named set of instruments; instruments registered under
	// the same name are shared, which is how separate subsystems feed one
	// metric family. The zero of every lookup on a nil Registry is a nil
	// instrument whose methods no-op.
	Registry = obs.Registry
	// Counter is a monotone uint64 instrument (Inc/Add/Value).
	Counter = obs.Counter
	// Gauge is a settable int64 instrument (Set/Add/Value).
	Gauge = obs.Gauge
	// Histogram is a fixed-bucket log-scale latency histogram; Observe is
	// lock-free and Snapshot yields quantiles without stopping recorders.
	Histogram = obs.Histogram
	// HistSnapshot is a point-in-time copy of a Histogram
	// (Count/Sum/Max/Quantile).
	HistSnapshot = obs.HistSnapshot
	// Tracer stitches per-query spans into a histogram family: total
	// latency plus one stage-labeled histogram per pipeline stage.
	Tracer = obs.Tracer
	// Span is one query's trace: Step attributes elapsed time to a stage,
	// Finish records the total (and the slow-query log past its
	// threshold). A Span is a value; the zero Span no-ops.
	Span = obs.Span
	// Stage names a query pipeline stage (admission wait, epoch wait, wave
	// assignment, leaf engine, summary hop).
	Stage = obs.Stage
	// SlowLog is a bounded ring of the slowest recorded queries; entries
	// past its threshold overwrite the oldest.
	SlowLog = obs.SlowLog
	// SlowEntry is one slow-query record: endpoints, total duration, and
	// the per-stage breakdown.
	SlowEntry = obs.SlowEntry
	// MetricsServer is the HTTP side-listener started by ServeMetrics,
	// serving /metrics, /debug/vars and /debug/slowlog.
	MetricsServer = obs.MetricsServer
)

// Query pipeline stages, in order.
const (
	// StageAdmission is the wait for an admission-controller slot.
	StageAdmission = obs.StageAdmission
	// StageEpochWait is the wait for a consistent snapshot epoch.
	StageEpochWait = obs.StageEpochWait
	// StageWave is the scheduler wait until the query's wave launches.
	StageWave = obs.StageWave
	// StageLeaf is the leaf engine traversal over the compressed quotient.
	StageLeaf = obs.StageLeaf
	// StageSummary is the cross-shard summary hop joining leaf answers.
	StageSummary = obs.StageSummary
)

// NewMetricsRegistry creates an empty registry. Pass it through
// StoreOptions/ShardedOptions, ServerOptions, and ReplicaOptions to
// instrument those layers; scrape it with PrometheusText or ServeMetrics.
func NewMetricsRegistry() *Registry { return obs.NewRegistry() }

// NewTracer builds a query tracer feeding fam_seconds plus
// fam_stage_seconds{stage=...} in r, recording into slow (optional, may be
// nil) past its threshold.
func NewTracer(r *Registry, fam string, slow *SlowLog) *Tracer {
	return obs.NewTracer(r, fam, slow)
}

// MetricLabel renders an inline Prometheus label into a metric name:
// MetricLabel("f", "k", "v") = `f{k="v"}`. Calling it again on the result
// merges into the existing brace set.
func MetricLabel(name, key, value string) string { return obs.Label(name, key, value) }

// ServeMetrics starts the HTTP metrics side-listener on addr, serving r's
// Prometheus text on /metrics, its JSON form on /debug/vars, and the slow
// logs on /debug/slowlog, until Close.
func ServeMetrics(addr string, r *Registry) (*MetricsServer, error) {
	return obs.ListenAndServe(addr, r)
}
